package transport

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// trySend transmits as many segments as the congestion window allows,
// pulling more bytes from an MPTCP group's shared buffer when the subflow
// runs dry.
func (f *Flow) trySend() {
	if f.group != nil && f.sndNxt >= f.Size {
		f.group.pull(f)
	}
	for !f.Done && f.sndNxt < f.Size {
		inflight := float64(f.sndNxt - f.cumAck)
		if inflight >= f.cwnd {
			break
		}
		payload := int64(net.MSS)
		if rem := f.Size - f.sndNxt; rem < payload {
			payload = rem
		}
		f.sendSegment(f.sndNxt, int(payload), f.sndNxt < f.highestEver())
		f.sndNxt += payload
	}
}

// highestEver tracks whether a send is a retransmission: after an RTO we
// roll sndNxt back, so anything below the high-water mark is a resend.
func (f *Flow) highestEver() int64 { return f.hiWater }

func (f *Flow) sendSegment(seq int64, payload int, retx bool) {
	ep := f.ep
	now := ep.tr.Eng.Now()
	path := ep.bal.SelectPath(f)
	if path != f.CurPath && f.started {
		f.PathChanges++
	}
	f.CurPath = path
	f.started = true
	pkt := ep.tr.Net.AllocPacket()
	*pkt = net.Packet{
		Kind:    net.Data,
		Flow:    f.ID,
		Src:     f.Src,
		Dst:     f.Dst,
		Seq:     seq,
		Payload: payload,
		Wire:    payload + net.HeaderBytes,
		ECT:     ep.tr.Opts.Protocol == DCTCP,
		Path:    path,
		SentAt:  now,
		Retx:    retx,
	}
	ep.host.Send(pkt)
	f.dre.Add(payload, now)
	ep.bal.OnSent(f, path, payload)
	if seq+int64(payload) > f.hiWater {
		f.hiWater = seq + int64(payload)
	}
	if f.rtoTimer == nil {
		f.armRTO()
	}
}

func (f *Flow) retransmitFirst() {
	f.ep.tr.Retransmits++
	f.ep.tr.telemRetx.Inc()
	payload := int64(net.MSS)
	if rem := f.Size - f.cumAck; rem < payload {
		payload = rem
	}
	f.sendSegment(f.cumAck, int(payload), true)
}

// rto returns the current retransmission timeout with backoff applied.
func (f *Flow) rto() sim.Time {
	base := f.ep.tr.Opts.RTOMin
	if f.srtt > 0 {
		est := sim.Time(f.srtt + 4*f.rttvar)
		if est > base {
			base = est
		}
	}
	backoff := f.rtoBackoff
	if max := f.ep.tr.Opts.MaxRTOBackoff; backoff > max {
		backoff = max
	}
	return base << uint(backoff)
}

func (f *Flow) armRTO() {
	eng := f.ep.tr.Eng
	// ScheduleCall with a package-level trampoline: no closure and (with a
	// warm engine free list) no event allocation per re-arm, which happens
	// on every ACK that advances the window.
	f.rtoTimer = eng.ScheduleCallKind(f.rto(), sim.KindRTO, flowRTO, f, nil)
}

func flowRTO(a1, _ any) { a1.(*Flow).onRTO() }

func (f *Flow) rearmRTO() {
	if f.rtoTimer != nil {
		f.rtoTimer.Cancel()
		f.rtoTimer = nil
	}
	if f.cumAck < f.sndNxt || f.sndNxt < f.Size {
		f.armRTO()
	}
}

func (f *Flow) onRTO() {
	f.rtoTimer = nil
	if f.Done {
		return
	}
	f.ep.tr.Timeouts++
	f.ep.tr.telemRTO.Inc()
	f.ep.tr.telemCwnd.Observe(f.cwnd)
	f.timeouts++
	f.TimedOut = true
	f.rtoBackoff++
	f.inRecovery = false
	f.dupacks = 0
	f.ssthresh = maxf(f.cwnd/2, 2*net.MSS)
	f.cwnd = net.MSS
	// Go-back-N: roll the send point back to the cumulative ACK. Segments
	// the receiver already has will be re-ACKed cumulatively and the window
	// advances quickly.
	f.sndNxt = f.cumAck
	f.ep.bal.OnTimeout(f, f.CurPath)
	f.armRTO()
	f.trySend()
}

// onAckPacket processes one ACK for this flow.
func (f *Flow) onAckPacket(pkt *net.Packet) {
	if f.Done {
		return
	}
	tr := f.ep.tr
	now := tr.Eng.Now()

	var rtt sim.Time
	if !pkt.Retx && pkt.EchoSent > 0 {
		rtt = now - pkt.EchoSent
		f.updateRTT(rtt)
		if tr.Opts.Protocol == Timely {
			f.timelyUpdate(rtt)
		}
	}
	ev := AckEvent{Path: pkt.EchoPath, RTT: rtt, ECE: pkt.EchoCE, QueueNs: pkt.EchoQueue}

	if pkt.AckSeq > f.cumAck {
		newly := pkt.AckSeq - f.cumAck
		f.cumAck = pkt.AckSeq
		if f.cumAck > f.sndNxt {
			// ACK covers data sent before an RTO rollback.
			f.sndNxt = f.cumAck
		}
		f.dupacks = 0
		f.rtoBackoff = 0
		ev.NewlyAcked = newly
		f.ep.bal.OnAck(f, ev)

		f.dctcpOnAck(newly, pkt.EchoCE)

		if f.inRecovery {
			if f.cumAck >= f.recoverSeq {
				f.inRecovery = false
				f.cwnd = f.ssthresh
			} else {
				// NewReno partial ACK: retransmit the next hole.
				f.retransmitFirst()
			}
		} else {
			f.growCwnd(newly)
		}
		f.rearmRTO()

		if f.cumAck >= f.Size {
			if f.group != nil && f.group.pull(f) {
				f.rearmRTO()
			} else {
				f.finish(now)
				return
			}
		}
	} else {
		f.dupacks++
		ev.Dup = true
		f.ep.bal.OnAck(f, ev)
		if !f.inRecovery && f.dupacks >= tr.Opts.DupThresh {
			f.inRecovery = true
			f.recoverSeq = f.sndNxt
			f.ssthresh = maxf(f.cwnd/2, 2*net.MSS)
			f.cwnd = f.ssthresh
			f.retransmitFirst()
			f.ep.bal.OnRetransmit(f, pkt.EchoPath)
		}
	}
	f.trySend()
}

func (f *Flow) growCwnd(newly int64) {
	if f.ep.tr.Opts.Protocol == Timely {
		return // the window is driven by the rate controller
	}
	if f.cwnd < f.ssthresh {
		f.cwnd += float64(newly) // slow start
	} else {
		f.cwnd += float64(net.MSS) * float64(newly) / f.cwnd // byte-counting CA
	}
}

// dctcpOnAck maintains the marked-byte fraction estimator alpha and applies
// the proportional window reduction at most once per window of data.
func (f *Flow) dctcpOnAck(newly int64, ece bool) {
	if f.ep.tr.Opts.Protocol != DCTCP {
		return
	}
	f.bytesAcked += newly
	if ece {
		f.bytesMarked += newly
	}
	if f.cumAck >= f.alphaSeq {
		if f.bytesAcked > 0 {
			frac := float64(f.bytesMarked) / float64(f.bytesAcked)
			g := f.ep.tr.Opts.G
			f.alpha = (1-g)*f.alpha + g*frac
		}
		f.bytesAcked, f.bytesMarked = 0, 0
		f.alphaSeq = f.sndNxt
	}
	if ece && f.cumAck > f.cwrSeq {
		f.cwnd = maxf(f.cwnd*(1-f.alpha/2), net.MSS)
		f.ssthresh = f.cwnd
		f.cwrSeq = f.sndNxt
	}
}

func (f *Flow) updateRTT(rtt sim.Time) {
	r := float64(rtt)
	if f.srtt == 0 {
		f.srtt = r
		f.rttvar = r / 2
		return
	}
	d := f.srtt - r
	if d < 0 {
		d = -d
	}
	f.rttvar = 0.75*f.rttvar + 0.25*d
	f.srtt = 0.875*f.srtt + 0.125*r
}

func (f *Flow) finish(now sim.Time) {
	f.Done = true
	f.EndAt = now
	if f.rtoTimer != nil {
		f.rtoTimer.Cancel()
		f.rtoTimer = nil
	}
	tr := f.ep.tr
	delete(f.ep.flows, f.ID)
	delete(tr.active, f.ID)
	tr.finished++
	tr.telemFlowsDone.Inc()
	tr.telemCwnd.Observe(f.cwnd)
	if tr.Opts.Protocol == DCTCP {
		tr.telemAlpha.Observe(f.alpha)
	}
	f.ep.bal.OnFlowDone(f)
	if tr.fctRing != nil && !f.Hidden {
		tr.recordFCT(float64(f.EndAt-f.StartAt) / 1e6)
	}
	if tr.OnFlowDone != nil && !f.Hidden {
		tr.OnFlowDone(f)
	}
	if f.group != nil {
		f.group.childDone(f, now)
	}
	if f.rep != nil {
		f.rep.childDone(f, now)
	}
}

func (ep *Endpoint) onAck(pkt *net.Packet) {
	if f, ok := ep.flows[pkt.Flow]; ok {
		f.onAckPacket(pkt)
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
