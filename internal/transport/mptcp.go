package transport

import "github.com/hermes-repro/hermes/internal/sim"

// The paper compares against MPTCP [31] only qualitatively, citing the lack
// of a reliable ns-3 package (§5.1). This file supplies the missing piece: a
// multipath TCP built from k ordinary subflows over a shared send buffer.
// Each subflow is a full DCTCP/Reno flow pinned (by its own flow id) to
// whatever path the balancer gives it and never rerouted — so MPTCP has no
// congestion mismatch, matching §7's observation — while data is pulled
// dynamically: fast subflows fetch more chunks, slow ones fetch fewer,
// approximating MPTCP's coupled scheduler without modeling LIA coupling.
//
// "Never rerouted" is load-bearing and pinned by test: a subflow chooses its
// path once, at its first segment, and keeps it for its whole life — through
// RTOs, fast retransmits and even link failures (f.PathChanges stays 0 under
// the stock ECMP wiring). Resilience comes only from the pull scheduler
// starving a stalled subflow of further chunks, never from moving it; a
// subflow whose path blackholes strands whatever chunks it already pulled.
// Only subflows opened after a topology change observe the updated path set.
// This is what makes the RepFlow-vs-MPTCP comparison honest: RepFlow escapes
// a dead path by racing an independently-hashed copy and cancelling the
// loser, while MPTCP must ride its pinned subflows to the end.

// MPTCPChunk is the pull granularity of the shared send buffer.
const MPTCPChunk = 64 * 1024

// MPTCPGroup is one logical multipath flow.
type MPTCPGroup struct {
	Size     int64
	Src, Dst int
	StartAt  sim.Time
	EndAt    sim.Time
	Done     bool

	Subflows []*Flow

	// OnDone fires when the last byte of the logical flow is delivered.
	OnDone func(*MPTCPGroup)

	remaining int64 // bytes not yet allocated to any subflow
	doneCount int
}

// FCT returns the logical flow's completion time, valid once Done.
func (g *MPTCPGroup) FCT() sim.Time { return g.EndAt - g.StartAt }

// StartMPTCP opens a logical flow of size bytes carried by up to k
// subflows. Subflows are ordinary flows (the balancer sees k distinct flow
// ids — under ECMP they hash independently, exactly like MPTCP over ECMP in
// practice). Subflows are hidden from Transport.OnFlowDone; completion is
// reported via the group's OnDone.
func (tr *Transport) StartMPTCP(src, dst int, size int64, k int) *MPTCPGroup {
	if size < 1 {
		size = 1
	}
	if k < 1 {
		k = 1
	}
	g := &MPTCPGroup{
		Size: size, Src: src, Dst: dst,
		StartAt:   tr.Eng.Now(),
		remaining: size,
	}
	for i := 0; i < k && g.remaining > 0; i++ {
		chunk := int64(MPTCPChunk)
		if chunk > g.remaining {
			chunk = g.remaining
		}
		g.remaining -= chunk
		f := tr.StartFlow(src, dst, chunk)
		f.Hidden = true
		f.group = g
		g.Subflows = append(g.Subflows, f)
	}
	return g
}

// pull allocates more bytes from the group's shared buffer to subflow f,
// returning true if anything was granted.
func (g *MPTCPGroup) pull(f *Flow) bool {
	if g.remaining <= 0 {
		return false
	}
	chunk := int64(MPTCPChunk)
	if chunk > g.remaining {
		chunk = g.remaining
	}
	g.remaining -= chunk
	f.Size += chunk
	return true
}

// childDone records a finished subflow and completes the group when the
// last one drains.
func (g *MPTCPGroup) childDone(f *Flow, now sim.Time) {
	g.doneCount++
	if g.doneCount == len(g.Subflows) && g.remaining == 0 {
		g.Done = true
		g.EndAt = now
		if g.OnDone != nil {
			g.OnDone(g)
		}
	}
}
