package transport

import "sort"

// FlowDump is one active flow's checkpoint-visible state: window, DCTCP
// estimator, RTT machinery and — crucially for verified replay — the
// absolute virtual deadline of its pending RTO timer. Floating-point fields
// are carried as-is; both sides of a checkpoint diff are produced by the
// same deterministic arithmetic, so their JSON renderings agree exactly.
type FlowDump struct {
	ID          uint64  `json:"id"`
	Src         int     `json:"src"`
	Dst         int     `json:"dst"`
	Size        int64   `json:"size"`
	StartNs     int64   `json:"start_ns"`
	SentBytes   int64   `json:"sent_bytes"`
	HiWater     int64   `json:"hi_water"`
	AckedBytes  int64   `json:"acked_bytes"`
	Cwnd        float64 `json:"cwnd"`
	Ssthresh    float64 `json:"ssthresh"`
	Dupacks     int     `json:"dupacks"`
	InRecovery  bool    `json:"in_recovery,omitempty"`
	Alpha       float64 `json:"alpha"`
	SRTT        float64 `json:"srtt"`
	RTTVar      float64 `json:"rttvar"`
	RTOBackoff  int     `json:"rto_backoff"`
	RTOAtNs     int64   `json:"rto_at_ns"` // -1 when no timer is pending
	Timeouts    int     `json:"timeouts"`
	CurPath     int     `json:"cur_path"`
	PathChanges int     `json:"path_changes"`
	Hidden      bool    `json:"hidden,omitempty"`
}

// Dump is the transport layer's full observable state: the flow-ID
// allocator, completion and loss counters, the RepFlow racing ledger, and
// every active flow sorted by ID.
type Dump struct {
	NextFlowID      uint64     `json:"next_flow_id"`
	Finished        int        `json:"finished"`
	Retransmits     uint64     `json:"retransmits"`
	Timeouts        uint64     `json:"timeouts"`
	RepFlowsStarted uint64     `json:"repflows_started,omitempty"`
	ReplicaWins     uint64     `json:"replica_wins,omitempty"`
	FlowsCancelled  uint64     `json:"flows_cancelled,omitempty"`
	RedundantBytes  uint64     `json:"redundant_bytes,omitempty"`
	Active          []FlowDump `json:"active"`
}

// Dump captures the transport state. Read-only: no timers touched, no RNG
// draws.
func (t *Transport) Dump() *Dump {
	d := &Dump{
		NextFlowID:      t.nextFlowID,
		Finished:        t.finished,
		Retransmits:     t.Retransmits,
		Timeouts:        t.Timeouts,
		RepFlowsStarted: t.RepFlowsStarted,
		ReplicaWins:     t.ReplicaWins,
		FlowsCancelled:  t.FlowsCancelled,
		RedundantBytes:  t.RedundantBytes,
	}
	for _, f := range t.active {
		fd := FlowDump{
			ID:          f.ID,
			Src:         f.Src,
			Dst:         f.Dst,
			Size:        f.Size,
			StartNs:     f.StartAt,
			SentBytes:   f.sndNxt,
			HiWater:     f.hiWater,
			AckedBytes:  f.cumAck,
			Cwnd:        f.cwnd,
			Ssthresh:    f.ssthresh,
			Dupacks:     f.dupacks,
			InRecovery:  f.inRecovery,
			Alpha:       f.alpha,
			SRTT:        f.srtt,
			RTTVar:      f.rttvar,
			RTOBackoff:  f.rtoBackoff,
			RTOAtNs:     -1,
			Timeouts:    f.timeouts,
			CurPath:     f.CurPath,
			PathChanges: f.PathChanges,
			Hidden:      f.Hidden,
		}
		if f.rtoTimer != nil && !f.rtoTimer.Canceled() {
			fd.RTOAtNs = f.rtoTimer.At()
		}
		d.Active = append(d.Active, fd)
	}
	sort.Slice(d.Active, func(i, j int) bool { return d.Active[i].ID < d.Active[j].ID })
	return d
}
