package transport

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// fixedPathBalancer pins every flow to one path and records callbacks.
type fixedPathBalancer struct {
	BaseBalancer
	path        int
	acks        int
	eceAcks     int
	retransmits int
	timeouts    int
	rtts        []sim.Time
}

func (b *fixedPathBalancer) Name() string           { return "fixed" }
func (b *fixedPathBalancer) SelectPath(f *Flow) int { return b.path }
func (b *fixedPathBalancer) OnAck(f *Flow, e AckEvent) {
	b.acks++
	if e.ECE {
		b.eceAcks++
	}
	if e.RTT > 0 {
		b.rtts = append(b.rtts, e.RTT)
	}
}
func (b *fixedPathBalancer) OnRetransmit(*Flow, int) { b.retransmits++ }
func (b *fixedPathBalancer) OnTimeout(*Flow, int)    { b.timeouts++ }

func testFabric(t *testing.T, spines int, opts Options) (*sim.Engine, *net.Network, *Transport, *fixedPathBalancer) {
	t.Helper()
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: 2, Spines: spines, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	bal := &fixedPathBalancer{}
	tr := New(nw, opts, func(h *net.Host) Balancer { return bal })
	return eng, nw, tr, bal
}

func TestSingleFlowCompletes(t *testing.T) {
	eng, _, tr, _ := testFabric(t, 2, DefaultOptions())
	f := tr.StartFlow(0, 2, 1_000_000)
	eng.Run(sim.Second)
	if !f.Done {
		t.Fatal("1 MB flow did not finish in 1 s of virtual time")
	}
	// 1 MB at 10 Gbps is ~0.8 ms ideal; allow generous slack for slow start.
	if f.FCT() > 5*sim.Millisecond {
		t.Fatalf("FCT = %v ns, unreasonably slow", f.FCT())
	}
	if tr.FinishedCount() != 1 || tr.ActiveCount() != 0 {
		t.Fatal("flow accounting wrong")
	}
}

func TestFCTNearIdealForLargeFlow(t *testing.T) {
	eng, _, tr, _ := testFabric(t, 2, DefaultOptions())
	const size = 100_000_000
	f := tr.StartFlow(0, 2, size)
	eng.Run(2 * sim.Second)
	if !f.Done {
		t.Fatal("flow did not finish")
	}
	// Goodput should reach at least 70% of the 10 Gbps line rate.
	gbps := float64(size) * 8 / float64(f.FCT())
	if gbps < 7 {
		t.Fatalf("goodput %.2f Gbps, want >= 7", gbps)
	}
}

func TestTinyFlowSinglePacket(t *testing.T) {
	eng, _, tr, _ := testFabric(t, 2, DefaultOptions())
	f := tr.StartFlow(0, 2, 100)
	eng.Run(sim.Second)
	if !f.Done {
		t.Fatal("100 B flow did not finish")
	}
}

func TestZeroSizeClamped(t *testing.T) {
	eng, _, tr, _ := testFabric(t, 2, DefaultOptions())
	f := tr.StartFlow(0, 2, 0)
	if f.Size != 1 {
		t.Fatalf("size = %d, want clamped to 1", f.Size)
	}
	eng.Run(sim.Second)
	if !f.Done {
		t.Fatal("clamped flow did not finish")
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	eng, _, tr, _ := testFabric(t, 1, DefaultOptions())
	// Two flows from different hosts to the same destination share the
	// single 10 Gbps spine path.
	const size = 20_000_000
	f1 := tr.StartFlow(0, 2, size)
	f2 := tr.StartFlow(1, 3, size)
	eng.Run(2 * sim.Second)
	if !f1.Done || !f2.Done {
		t.Fatal("flows did not finish")
	}
	// Completion times should be within 2x of each other (rough fairness).
	a, b := float64(f1.FCT()), float64(f2.FCT())
	if a/b > 2 || b/a > 2 {
		t.Fatalf("unfair sharing: %v vs %v", f1.FCT(), f2.FCT())
	}
}

func TestDCTCPSeesECNAndBacksOff(t *testing.T) {
	eng, nw, tr, bal := testFabric(t, 1, DefaultOptions())
	// Four flows into one host: its access link is the bottleneck and the
	// queue will mark.
	for src := 0; src < 2; src++ {
		tr.StartFlow(src, 2, 10_000_000)
	}
	f := tr.StartFlow(0, 2, 10_000_000)
	eng.Run(sim.Second)
	if bal.eceAcks == 0 {
		t.Fatal("no ECN-echo ACKs under congestion")
	}
	if f.Alpha() == 0 {
		t.Fatal("DCTCP alpha stayed zero under persistent marking")
	}
	// The fan-in point (the source leaf's single uplink, 20G offered onto
	// 10G) is the first bottleneck and should have marked packets.
	if nw.Leaves[0].Uplink(0).ECNMarks == 0 {
		t.Fatal("bottleneck port never marked")
	}
}

func TestRenoIgnoresECN(t *testing.T) {
	opts := DefaultOptions()
	opts.Protocol = Reno
	eng, _, tr, bal := testFabric(t, 1, opts)
	for src := 0; src < 2; src++ {
		tr.StartFlow(src, 2, 10_000_000)
	}
	eng.Run(sim.Second)
	if bal.eceAcks != 0 {
		t.Fatal("Reno flows should not be ECT, yet ACKs carried ECE")
	}
}

func TestFastRetransmitOnLoss(t *testing.T) {
	eng, nw, tr, bal := testFabric(t, 2, DefaultOptions())
	// Drop exactly one mid-flow data packet at spine 0.
	dropped := false
	n := 0
	nw.Spines[0].AddDropFn(func(p *net.Packet) bool {
		if p.Kind != net.Data {
			return false
		}
		n++
		if n == 30 && !dropped {
			dropped = true
			return true
		}
		return false
	})
	f := tr.StartFlow(0, 2, 2_000_000)
	eng.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not recover from single loss")
	}
	if bal.retransmits == 0 {
		t.Fatal("no fast retransmit for an isolated loss")
	}
	if bal.timeouts != 0 {
		t.Fatalf("isolated loss caused %d RTOs; fast recovery failed", bal.timeouts)
	}
}

func TestRTORecoversFromBlackout(t *testing.T) {
	eng, nw, tr, bal := testFabric(t, 2, DefaultOptions())
	// Drop everything on spine 0 for the first 50 ms.
	nw.Spines[0].AddDropFn(func(p *net.Packet) bool {
		return eng.Now() < 50*sim.Millisecond
	})
	f := tr.StartFlow(0, 2, 500_000)
	eng.Run(2 * sim.Second)
	if !f.Done {
		t.Fatal("flow did not recover after blackout lifted")
	}
	if bal.timeouts == 0 {
		t.Fatal("blackout should have caused RTOs")
	}
	if f.Timeouts() != bal.timeouts {
		t.Fatalf("flow counted %d timeouts, balancer saw %d", f.Timeouts(), bal.timeouts)
	}
}

func TestTimedOutFlagSetOnRTO(t *testing.T) {
	eng, nw, tr, _ := testFabric(t, 2, DefaultOptions())
	nw.Spines[0].AddDropFn(func(p *net.Packet) bool { return true })
	nw.Spines[1].AddDropFn(func(p *net.Packet) bool { return true })
	f := tr.StartFlow(0, 2, 100_000)
	eng.Run(100 * sim.Millisecond)
	if !f.TimedOut {
		t.Fatal("TimedOut flag not set while blackholed")
	}
	if f.Done {
		t.Fatal("flow cannot finish while fully blackholed")
	}
}

func TestRTTSamplesPlausible(t *testing.T) {
	eng, nw, tr, bal := testFabric(t, 2, DefaultOptions())
	tr.StartFlow(0, 2, 500_000)
	eng.Run(sim.Second)
	if len(bal.rtts) == 0 {
		t.Fatal("no RTT samples")
	}
	base := nw.ApproxBaseRTT()
	for _, r := range bal.rtts {
		if r < base/2 {
			t.Fatalf("RTT sample %d below base %d", r, base)
		}
		if r > 100*sim.Millisecond {
			t.Fatalf("RTT sample %d absurdly high", r)
		}
	}
}

func TestPathChangeCounting(t *testing.T) {
	eng, _, tr, bal := testFabric(t, 2, DefaultOptions())
	bal.path = 0
	f := tr.StartFlow(0, 2, 5_000_000)
	eng.Run(sim.Millisecond)
	bal.path = 1
	eng.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow did not finish")
	}
	if f.PathChanges == 0 {
		t.Fatal("path change not counted")
	}
}

func TestSprayWithoutReorderBufferCausesDupacks(t *testing.T) {
	// A spraying balancer without reorder masking must trigger spurious
	// fast retransmits under path-delay skew; with the buffer they are
	// suppressed. Skew comes from a longer propagation delay on spine 1.
	run := func(reorder sim.Time) int {
		eng := sim.NewEngine()
		nw, err := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
			Leaves: 2, Spines: 2, HostsPerLeaf: 2,
			HostRateBps: 10e9, FabricRateBps: 10e9,
			HostDelay: 1000, FabricDelay: 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Skew: 50 us extra propagation via spine 1, both directions.
		nw.Leaves[0].Uplink(1).SetPropDelay(50 * sim.Microsecond)
		nw.Spines[1].Downlink(1).SetPropDelay(50 * sim.Microsecond)
		opts := DefaultOptions()
		opts.ReorderTimeout = reorder
		bal := &sprayBalancer{}
		tr := New(nw, opts, func(h *net.Host) Balancer { return bal })
		tr.StartFlow(0, 2, 3_000_000)
		eng.Run(sim.Second)
		return bal.retransmits
	}
	noBuf := run(0)
	withBuf := run(400 * sim.Microsecond)
	if noBuf == 0 {
		t.Fatal("expected spurious retransmits when spraying across skewed paths")
	}
	if withBuf >= noBuf {
		t.Fatalf("reorder buffer did not help: %d -> %d", noBuf, withBuf)
	}
}

type sprayBalancer struct {
	BaseBalancer
	i           int
	retransmits int
}

func (b *sprayBalancer) Name() string           { return "spray" }
func (b *sprayBalancer) SelectPath(f *Flow) int { b.i++; return b.i % 2 }
func (b *sprayBalancer) OnRetransmit(*Flow, int) {
	b.retransmits++
}

func TestReorderBufferStillRecoversRealLoss(t *testing.T) {
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.ReorderTimeout = 400 * sim.Microsecond
	bal := &sprayBalancer{}
	tr := New(nw, opts, func(h *net.Host) Balancer { return bal })
	n := 0
	nw.Spines[0].AddDropFn(func(p *net.Packet) bool {
		if p.Kind != net.Data {
			return false
		}
		n++
		return n == 25
	})
	f := tr.StartFlow(0, 2, 2_000_000)
	eng.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow with reorder buffer did not recover from loss")
	}
}

func TestUDPSenderRate(t *testing.T) {
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := &UDPSink{}
	sink.Attach(nw.Hosts[2])
	u := &UDPSender{Eng: eng, Host: nw.Hosts[0], Dst: 2, RateBps: 2e9, Paths: []int{0}}
	u.Start()
	eng.Run(10 * sim.Millisecond)
	u.Stop()
	gotBps := float64(sink.Bytes+uint64(sink.Pkts)*net.HeaderBytes) * 8 / 0.010
	if gotBps < 1.8e9 || gotBps > 2.2e9 {
		t.Fatalf("UDP rate = %.3g bps, want ~2e9", gotBps)
	}
}

func TestUDPSprayCyclesPaths(t *testing.T) {
	eng := sim.NewEngine()
	nw, _ := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	u := &UDPSender{Eng: eng, Host: nw.Hosts[0], Dst: 2, RateBps: 5e9, Paths: []int{0, 1}}
	u.Start()
	eng.Run(sim.Millisecond)
	u.Stop()
	if nw.Spines[0].Downlink(1).TxPackets == 0 || nw.Spines[1].Downlink(1).TxPackets == 0 {
		t.Fatal("UDP spray did not use both paths")
	}
}

func TestManyFlowsAllFinish(t *testing.T) {
	eng, _, tr, _ := testFabric(t, 4, DefaultOptions())
	var flows []*Flow
	for i := 0; i < 50; i++ {
		flows = append(flows, tr.StartFlow(i%2, 2+i%2, int64(10_000+i*1000)))
	}
	eng.Run(sim.Second)
	for i, f := range flows {
		if !f.Done {
			t.Fatalf("flow %d unfinished", i)
		}
	}
}

func TestGoBackNAfterRTOResendsFromCumAck(t *testing.T) {
	eng, nw, tr, bal := testFabric(t, 2, DefaultOptions())
	// Kill spine 0 permanently; flow pinned to it must keep timing out
	// without progress, with bounded retransmission attempts.
	nw.Spines[0].AddDropFn(func(p *net.Packet) bool { return true })
	bal.path = 0
	f := tr.StartFlow(0, 2, 1_000_000)
	eng.Run(500 * sim.Millisecond)
	if f.AckedBytes() != 0 {
		t.Fatal("blackholed flow made progress")
	}
	if bal.timeouts < 2 {
		t.Fatalf("expected repeated RTOs, got %d", bal.timeouts)
	}
}
