package transport

// Validation against DCTCP's published steady-state behaviour (Alizadeh et
// al., SIGCOMM 2010): these tests check the *transport physics* the whole
// evaluation rests on, not just code paths.

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// A long-lived DCTCP flow holds the bottleneck queue near the marking
// threshold K — well above zero (utilization) and well below the drop-tail
// limit (low latency), the headline DCTCP property.
func TestDCTCPQueueHoversNearThreshold(t *testing.T) {
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: 2, Spines: 1, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	bal := &fixedPathBalancer{}
	tr := New(nw, DefaultOptions(), func(h *net.Host) Balancer { return bal })
	// Two senders behind one leaf: the shared leaf uplink (2x10G offered
	// onto 10G) is the bottleneck whose queue DCTCP regulates.
	tr.StartFlow(0, 2, 1<<40) // effectively infinite
	tr.StartFlow(1, 3, 1<<40)
	bottleneck := nw.Leaves[0].Uplink(0)

	// Skip slow start, then sample the queue.
	eng.Run(20 * sim.Millisecond)
	var sum float64
	samples := 0
	max := 0
	for i := 0; i < 400; i++ {
		eng.Run(eng.Now() + 50*sim.Microsecond)
		q := bottleneck.QueuedBytes()
		sum += float64(q)
		samples++
		if q > max {
			max = q
		}
	}
	mean := sum / float64(samples)
	k := float64(net.DefaultECNK(10e9)) // 95 KB
	if mean < 0.2*k || mean > 2.5*k {
		t.Fatalf("steady-state queue mean %.0f B, want within [0.2K, 2.5K] of K=%.0f", mean, k)
	}
	if max >= net.DefaultQueueCap(10e9) {
		t.Fatalf("queue hit the drop-tail limit (%d B); DCTCP should keep it near K", max)
	}
	if bottleneck.Drops != 0 {
		t.Fatalf("%d drops in steady state; DCTCP should not overflow deep buffers", bottleneck.Drops)
	}
}

// Link utilization stays high (> 90%) while the queue stays small — the
// "high throughput AND low latency" combination.
func TestDCTCPFullUtilizationUnderMarking(t *testing.T) {
	eng := sim.NewEngine()
	nw, _ := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: 2, Spines: 1, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	bal := &fixedPathBalancer{}
	tr := New(nw, DefaultOptions(), func(h *net.Host) Balancer { return bal })
	tr.StartFlow(0, 2, 1<<40)
	tr.StartFlow(1, 3, 1<<40)
	bottleneck := nw.Leaves[0].Uplink(0) // 2x10G offered onto 10G
	eng.Run(20 * sim.Millisecond)
	before := bottleneck.TxBytes
	eng.Run(eng.Now() + 50*sim.Millisecond)
	gbps := float64(bottleneck.TxBytes-before) * 8 / 0.050 / 1e9
	if gbps < 9 {
		t.Fatalf("bottleneck carried %.2f Gbps, want > 9 (full utilization)", gbps)
	}
	if bottleneck.ECNMarks == 0 {
		t.Fatal("no marking despite persistent congestion")
	}
}

// The alpha estimator converges to a small fraction for a single flow at a
// deep-buffered bottleneck (DCTCP's alpha ~ sqrt(2/BDP-in-packets) regime),
// and to a much larger value when the path is persistently overloaded by an
// unresponsive competitor.
func TestDCTCPAlphaRegimes(t *testing.T) {
	// Regime 1: one DCTCP flow alone — small alpha.
	eng := sim.NewEngine()
	nw, _ := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: 2, Spines: 1, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	bal := &fixedPathBalancer{}
	tr := New(nw, DefaultOptions(), func(h *net.Host) Balancer { return bal })
	f := tr.StartFlow(0, 2, 1<<40)
	eng.Run(100 * sim.Millisecond)
	alone := f.Alpha()
	if alone <= 0 || alone > 0.5 {
		t.Fatalf("solo alpha = %.3f, want small but non-zero", alone)
	}

	// Regime 2: a 9.5 Gbps UDP blast shares the bottleneck — alpha rises.
	eng2 := sim.NewEngine()
	nw2, _ := net.NewLeafSpine(eng2, sim.NewRNG(1), net.Config{
		Leaves: 2, Spines: 1, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	bal2 := &fixedPathBalancer{}
	tr2 := New(nw2, DefaultOptions(), func(h *net.Host) Balancer { return bal2 })
	udp := &UDPSender{Eng: eng2, Host: nw2.Hosts[1], Dst: 2, RateBps: 9_500_000_000, Paths: []int{0}}
	udp.Start()
	f2 := tr2.StartFlow(0, 2, 1<<40)
	eng2.Run(100 * sim.Millisecond)
	crowded := f2.Alpha()
	if crowded < 2*alone {
		t.Fatalf("alpha under persistent overload (%.3f) not clearly above solo (%.3f)", crowded, alone)
	}
}

// Convergence: a second flow joining an occupied bottleneck approaches its
// fair share within tens of milliseconds.
func TestDCTCPConvergenceToFairShare(t *testing.T) {
	eng := sim.NewEngine()
	nw, _ := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: 2, Spines: 1, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	bal := &fixedPathBalancer{}
	tr := New(nw, DefaultOptions(), func(h *net.Host) Balancer { return bal })
	f1 := tr.StartFlow(0, 2, 1<<40)
	eng.Run(30 * sim.Millisecond) // f1 owns the link
	f2 := tr.StartFlow(1, 2, 1<<40)
	eng.Run(eng.Now() + 60*sim.Millisecond)
	// Compare goodput over the last 20 ms via acked-byte deltas.
	a1, a2 := f1.AckedBytes(), f2.AckedBytes()
	eng.Run(eng.Now() + 20*sim.Millisecond)
	r1 := float64(f1.AckedBytes() - a1)
	r2 := float64(f2.AckedBytes() - a2)
	if r2 < 0.4*r1 {
		t.Fatalf("late flow got %.1f%% of the incumbent's rate; convergence too slow", 100*r2/r1)
	}
}
