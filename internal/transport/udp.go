package transport

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// UDPSender emits constant-bit-rate unreliable traffic, used by the
// congestion-mismatch micro-benchmarks (§2.2.2, flow B of Example 2). It
// cycles over the configured paths (a single-element slice pins one path).
type UDPSender struct {
	Eng     *sim.Engine
	Host    *net.Host
	Dst     int
	RateBps int64
	Paths   []int // paths to cycle over; nil means net.PathAny
	Payload int   // payload bytes per packet; defaults to net.MSS

	FlowID uint64
	Sent   uint64 // packets emitted

	idx     int
	running bool
	stopped bool
}

// Start begins emission. Calling Start twice is a no-op.
func (u *UDPSender) Start() {
	if u.running {
		return
	}
	if u.Payload <= 0 {
		u.Payload = net.MSS
	}
	u.running = true
	u.sendNext()
}

// Stop halts emission after the current interval.
func (u *UDPSender) Stop() { u.stopped = true }

func (u *UDPSender) sendNext() {
	if u.stopped {
		u.running = false
		return
	}
	path := net.PathAny
	if len(u.Paths) > 0 {
		path = u.Paths[u.idx%len(u.Paths)]
		u.idx++
	}
	wire := u.Payload + net.HeaderBytes
	pkt := u.Host.Network().AllocPacket()
	*pkt = net.Packet{
		Kind:    net.UDPData,
		Flow:    u.FlowID,
		Src:     u.Host.ID,
		Dst:     u.Dst,
		Seq:     int64(u.Sent) * int64(u.Payload),
		Payload: u.Payload,
		Wire:    wire,
		Path:    path,
		SentAt:  u.Eng.Now(),
	}
	u.Host.Send(pkt)
	u.Sent++
	interval := sim.Time(int64(wire) * 8 * sim.Second / u.RateBps)
	u.Eng.ScheduleCallKind(interval, sim.KindArrival, udpSendNext, u, nil)
}

func udpSendNext(a1, _ any) { a1.(*UDPSender).sendNext() }

// UDPSink counts received UDP bytes at a host, for throughput measurements.
type UDPSink struct {
	Bytes uint64
	Pkts  uint64
}

// Attach registers the sink on the host.
func (s *UDPSink) Attach(h *net.Host) {
	h.Handle(net.UDPData, func(p *net.Packet) {
		s.Bytes += uint64(p.Payload)
		s.Pkts++
	})
}
