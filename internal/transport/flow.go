package transport

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// Protocol selects the congestion control algorithm.
type Protocol int

const (
	// DCTCP marks data ECT, maintains the alpha estimator and reduces the
	// window proportionally to the marked fraction (the paper's default).
	DCTCP Protocol = iota
	// Reno is plain TCP NewReno without ECN (the §5.4 "different transport
	// protocols" comparison).
	Reno
	// Timely is RTT-gradient congestion control [26] (extension; see
	// timely.go).
	Timely
)

// Options configures all endpoints of a Transport.
type Options struct {
	Protocol     Protocol
	InitCwndPkts int      // initial window in segments (paper: 10)
	RTOMin       sim.Time // minimum/initial RTO (paper: 10 ms)
	DupThresh    int      // duplicate-ACK threshold for fast retransmit
	G            float64  // DCTCP alpha gain (1/16)

	// ReorderTimeout, when positive, enables a JUGGLER-style receive-side
	// reordering buffer: out-of-order arrivals are held back and generate
	// no duplicate ACKs unless the hole persists past the timeout. Presto*
	// uses this to mask spraying-induced reordering.
	ReorderTimeout sim.Time

	// MaxRTOBackoff caps exponential RTO backoff at RTOMin << MaxRTOBackoff.
	MaxRTOBackoff int

	// Timely configures the RTT-gradient controller (Protocol == Timely).
	Timely TimelyParams
}

// DefaultOptions returns the paper's transport settings.
func DefaultOptions() Options {
	return Options{
		Protocol:      DCTCP,
		InitCwndPkts:  10,
		RTOMin:        10 * sim.Millisecond,
		DupThresh:     3,
		G:             1.0 / 16,
		MaxRTOBackoff: 6,
	}
}

// Flow is the sender-side state of one TCP/DCTCP flow. Balancers receive
// *Flow and may read the exported fields and accessors; the unexported
// fields belong to the congestion control machinery.
type Flow struct {
	ID      uint64
	Src     int
	Dst     int
	SrcLeaf int
	DstLeaf int
	Size    int64
	StartAt sim.Time
	EndAt   sim.Time
	Done    bool

	// CurPath is the path of the most recently sent segment. Balancers
	// both read and (through SelectPath's return value) set it.
	CurPath int
	// TimedOut is set when the flow experiences an RTO (i_f^timeout in
	// Table 3) and cleared by Hermes when it handles the reroute.
	TimedOut bool
	// PathChanges counts reroutes, for reporting.
	PathChanges int
	// Hidden excludes the flow from Transport.OnFlowDone reporting (MPTCP
	// subflows and RepFlow copies report through their group instead).
	Hidden bool
	// Cancelled is set by Transport.CancelFlow: the flow was aborted (e.g.
	// the losing copy of a RepFlow race) rather than completed; Done is also
	// set, and EndAt records the cancellation instant.
	Cancelled bool

	group   *MPTCPGroup
	rep     *RepFlowGroup
	started bool

	// Sliding window state.
	sndNxt     int64
	hiWater    int64 // highest byte ever sent; sends below it are resends
	cumAck     int64
	cwnd       float64
	ssthresh   float64
	dupacks    int
	inRecovery bool
	recoverSeq int64

	// DCTCP state.
	alpha       float64
	bytesAcked  int64
	bytesMarked int64
	alphaSeq    int64
	cwrSeq      int64

	// TIMELY controller state (Protocol == Timely).
	timely timelyState

	// RTT estimation / RTO.
	srtt, rttvar float64
	rtoBackoff   int
	rtoTimer     *sim.Event
	timeouts     int

	dre net.DRE
	ep  *Endpoint
}

// SentBytes returns the bytes handed to the network so far (s_sent in
// Table 3, the remaining-size estimator input).
func (f *Flow) SentBytes() int64 { return f.sndNxt }

// AckedBytes returns the cumulatively acknowledged bytes.
func (f *Flow) AckedBytes() int64 { return f.cumAck }

// RateBps returns the flow's estimated sending rate (r_f in Table 3).
func (f *Flow) RateBps(now sim.Time) float64 { return f.dre.RateBps(now) }

// Started reports whether any segment has been sent yet; a false value means
// SelectPath is choosing the initial path.
func (f *Flow) Started() bool { return f.started }

// Timeouts returns the number of RTO events the flow has suffered.
func (f *Flow) Timeouts() int { return f.timeouts }

// FCT returns the flow completion time, valid once Done.
func (f *Flow) FCT() sim.Time { return f.EndAt - f.StartAt }

// Cwnd returns the congestion window in bytes (exposed for tests and
// instrumentation).
func (f *Flow) Cwnd() float64 { return f.cwnd }

// Alpha returns the DCTCP fraction estimate (exposed for tests).
func (f *Flow) Alpha() float64 { return f.alpha }
