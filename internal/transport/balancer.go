// Package transport implements DCTCP (and plain NewReno) endpoints on the
// simulated fabric, with explicit per-packet path control. Load balancers
// plug in through the Balancer interface: the sender consults SelectPath for
// every outgoing data segment (packet granularity, the minimum switchable
// unit Hermes argues for) and feeds back per-ACK congestion signals, fast
// retransmits and timeouts — exactly the transport-level signals §3.1 of the
// paper senses.
package transport

import "github.com/hermes-repro/hermes/internal/sim"

// AckEvent carries the per-ACK signals exposed to balancers. Each delivered
// data packet is echoed with its send timestamp, path and CE bit
// (TCP-timestamp style), so every ACK yields one exact per-path RTT and ECN
// sample — the measurement machinery Hermes builds on.
type AckEvent struct {
	// Path is the path the echoed data packet traversed.
	Path int
	// RTT is the measured round-trip for the echoed packet, or 0 when the
	// sample is invalid (the echoed segment was a retransmission; Karn's
	// rule).
	RTT sim.Time
	// ECE reports whether the echoed data packet was ECN-marked.
	ECE bool
	// NewlyAcked is the number of bytes this ACK newly acknowledged
	// (0 for duplicate ACKs).
	NewlyAcked int64
	// Dup marks a duplicate ACK.
	Dup bool
	// QueueNs is the total output-queue waiting time the echoed data packet
	// accumulated across its forward hops — the fabric's per-packet delay
	// decomposition signal (serialization and propagation are deterministic
	// per path, so queueing is the variable component worth echoing).
	QueueNs sim.Time
}

// Balancer is the host-side load balancing plug-in. Implementations that
// delegate to in-switch schemes simply return net.PathAny from SelectPath.
// All methods run on the simulation goroutine.
type Balancer interface {
	// Name identifies the scheme in results.
	Name() string
	// SelectPath returns the path (spine index) for the next data segment
	// of f, or net.PathAny to let the source leaf switch decide.
	SelectPath(f *Flow) int
	// OnSent runs after a data segment of f is handed to the NIC.
	OnSent(f *Flow, path int, bytes int)
	// OnAck runs for every ACK received for f.
	OnAck(f *Flow, ev AckEvent)
	// OnRetransmit runs when a fast retransmit fires; path is the best
	// guess of where the loss happened.
	OnRetransmit(f *Flow, path int)
	// OnTimeout runs when f's retransmission timer fires on the given path.
	OnTimeout(f *Flow, path int)
	// OnFlowStart and OnFlowDone bracket the flow's lifetime.
	OnFlowStart(f *Flow)
	OnFlowDone(f *Flow)
}

// BaseBalancer provides no-op callbacks so implementations only override
// what they need.
type BaseBalancer struct{}

// OnSent implements Balancer.
func (BaseBalancer) OnSent(*Flow, int, int) {}

// OnAck implements Balancer.
func (BaseBalancer) OnAck(*Flow, AckEvent) {}

// OnRetransmit implements Balancer.
func (BaseBalancer) OnRetransmit(*Flow, int) {}

// OnTimeout implements Balancer.
func (BaseBalancer) OnTimeout(*Flow, int) {}

// OnFlowStart implements Balancer.
func (BaseBalancer) OnFlowStart(*Flow) {}

// OnFlowDone implements Balancer.
func (BaseBalancer) OnFlowDone(*Flow) {}
