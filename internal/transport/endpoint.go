package transport

import (
	"fmt"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/telemetry"
)

// Transport owns one Endpoint per host and the global flow registry.
type Transport struct {
	Net  *net.Network
	Eng  *sim.Engine
	Opts Options

	Endpoints []*Endpoint

	// OnFlowDone, if set, is invoked when a flow completes.
	OnFlowDone func(*Flow)

	nextFlowID uint64
	active     map[uint64]*Flow
	finished   int

	// Raw loss counters: plain adds on their (rare) paths, always on, so
	// the flight recorder can sample them without the telemetry registry.
	Retransmits uint64
	Timeouts    uint64

	// fctRing holds the most recent completed-flow FCTs in milliseconds
	// for the flight recorder's tail-latency probe. nil (one predictable
	// branch in finish) unless AttachFlightRecorder armed it.
	fctRing    []float64
	fctRingPos int
	fctRingLen int

	// RepFlow accounting (see repflow.go); zero unless StartRepFlow is used.
	RepFlowsStarted uint64 // replicated logical flows opened
	ReplicaWins     uint64 // races won by the replica copy
	FlowsCancelled  uint64 // losing copies aborted by CancelFlow
	RedundantBytes  uint64 // payload bytes the losing copies had sent

	// Telemetry instruments; nil (free) unless AttachTelemetry was called.
	telemFlowsStarted *telemetry.Counter
	telemFlowsDone    *telemetry.Counter
	telemRetx         *telemetry.Counter
	telemRTO          *telemetry.Counter
	telemCwnd         *telemetry.Histogram
	telemAlpha        *telemetry.Histogram
}

// New wires an endpoint onto every host. balFor supplies the per-host
// balancer (hosts under the same leaf may share state behind the interface,
// as Hermes' rack-level probing does).
func New(nw *net.Network, opts Options, balFor func(h *net.Host) Balancer) *Transport {
	if opts.InitCwndPkts <= 0 {
		opts.InitCwndPkts = 10
	}
	if opts.RTOMin <= 0 {
		opts.RTOMin = 10 * sim.Millisecond
	}
	if opts.DupThresh <= 0 {
		opts.DupThresh = 3
	}
	if opts.G <= 0 {
		opts.G = 1.0 / 16
	}
	if opts.MaxRTOBackoff <= 0 {
		opts.MaxRTOBackoff = 6
	}
	if opts.Protocol == Timely && opts.Timely.THigh == 0 {
		opts.Timely = DefaultTimelyParams(nw.ApproxBaseRTT(), nw.Cfg.HostRateBps)
	}
	tr := &Transport{Net: nw, Eng: nw.Eng, Opts: opts, active: map[uint64]*Flow{}}
	for _, h := range nw.Hosts {
		ep := &Endpoint{
			tr:    tr,
			host:  h,
			bal:   balFor(h),
			flows: map[uint64]*Flow{},
			rcv:   map[uint64]*rcvFlow{},
		}
		h.Handle(net.Data, ep.onData)
		h.Handle(net.Ack, ep.onAck)
		tr.Endpoints = append(tr.Endpoints, ep)
	}
	return tr
}

// StartFlow opens a flow of size bytes from src to dst and begins sending
// immediately.
func (tr *Transport) StartFlow(src, dst int, size int64) *Flow {
	if size < 1 {
		size = 1
	}
	tr.nextFlowID++
	ep := tr.Endpoints[src]
	f := &Flow{
		ID:       tr.nextFlowID,
		Src:      src,
		Dst:      dst,
		SrcLeaf:  tr.Net.LeafOf(src),
		DstLeaf:  tr.Net.LeafOf(dst),
		Size:     size,
		StartAt:  tr.Eng.Now(),
		CurPath:  net.PathAny,
		cwnd:     float64(tr.Opts.InitCwndPkts * net.MSS),
		ssthresh: 1 << 30,
		alphaSeq: 0,
		cwrSeq:   -1,
		dre:      net.NewDRE(0),
		ep:       ep,
	}
	ep.flows[f.ID] = f
	tr.active[f.ID] = f
	tr.telemFlowsStarted.Inc()
	ep.bal.OnFlowStart(f)
	f.trySend()
	return f
}

// ActiveFlows returns the currently running flows (map shared; read-only).
func (tr *Transport) ActiveFlows() map[uint64]*Flow { return tr.active }

// ActiveCount returns the number of unfinished flows.
func (tr *Transport) ActiveCount() int { return len(tr.active) }

// FinishedCount returns the number of completed flows.
func (tr *Transport) FinishedCount() int { return tr.finished }

// Endpoint is the per-host TCP stack instance.
type Endpoint struct {
	tr    *Transport
	host  *net.Host
	bal   Balancer
	flows map[uint64]*Flow    // flows this host is sending
	rcv   map[uint64]*rcvFlow // flows this host is receiving
}

// Balancer returns the host's balancer (exposed for tests and ablation).
func (ep *Endpoint) Balancer() Balancer { return ep.bal }

// SetBalancer swaps the host's balancer mid-run — the steering half of a
// what-if fork: replay a checkpointed run to its capture instant, then hand
// every endpoint a different scheme's balancer. In-flight flows keep their
// window and path state; the new balancer simply starts receiving their
// SelectPath/OnAck callbacks (schemes assign path state lazily, so a
// mid-life adoption is indistinguishable from a fresh flow to them).
func (ep *Endpoint) SetBalancer(b Balancer) { ep.bal = b }

// Host returns the attached host.
func (ep *Endpoint) Host() *net.Host { return ep.host }

func (ep *Endpoint) String() string {
	return fmt.Sprintf("endpoint(host=%d)", ep.host.ID)
}
