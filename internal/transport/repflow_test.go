package transport

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/failure"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

func repflowFabric(t *testing.T) (*sim.Engine, *net.Network, *Transport) {
	t.Helper()
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// modBalancer pins path = flowID % 2, so the two copies of a RepFlow
	// group (consecutive flow ids) always land on distinct spines.
	tr := New(nw, DefaultOptions(), func(h *net.Host) Balancer { return &modBalancer{} })
	return eng, nw, tr
}

// TestRepFlowFirstCompletionWins: on a healthy fabric the race resolves to
// exactly one winner, the loser is cancelled, OnDone fires once, and the
// logical FCT equals the winner's.
func TestRepFlowFirstCompletionWins(t *testing.T) {
	eng, _, tr := repflowFabric(t)
	done := 0
	g := tr.StartRepFlow(0, 2, 50_000)
	g.OnDone = func(*RepFlowGroup) { done++ }
	if !g.Primary.Hidden || !g.Replica.Hidden {
		t.Fatal("RepFlow copies must be hidden from Transport.OnFlowDone")
	}
	eng.Run(sim.Second)
	if !g.Done || done != 1 {
		t.Fatalf("group done=%v callbacks=%d", g.Done, done)
	}
	if g.Winner == nil || (g.Winner != g.Primary && g.Winner != g.Replica) {
		t.Fatalf("winner %v is neither copy", g.Winner)
	}
	loser := g.Primary
	if g.Winner == g.Primary {
		loser = g.Replica
	}
	if !g.Winner.Done || g.Winner.Cancelled {
		t.Fatal("winner must be done and not cancelled")
	}
	if !loser.Done || !loser.Cancelled {
		t.Fatal("loser must be cancelled")
	}
	if g.Winner.AckedBytes() != g.Size {
		t.Fatalf("winner acked %d bytes, want %d", g.Winner.AckedBytes(), g.Size)
	}
	if g.FCT() != g.Winner.EndAt-g.Winner.StartAt {
		t.Fatalf("group FCT %v != winner FCT", g.FCT())
	}
	if tr.RepFlowsStarted != 1 || tr.FlowsCancelled != 1 {
		t.Fatalf("counters: started=%d cancelled=%d", tr.RepFlowsStarted, tr.FlowsCancelled)
	}
	if tr.ActiveCount() != 0 {
		t.Fatalf("%d flows still active after the race resolved", tr.ActiveCount())
	}
	if tr.RedundantBytes == 0 || tr.RedundantBytes > uint64(g.Size) {
		t.Fatalf("redundant bytes %d outside (0, %d]", tr.RedundantBytes, g.Size)
	}
}

// TestRepFlowEscapesBlackholedPath: with one copy pinned to a blackholed
// spine, the other copy wins the race in microseconds — far inside the 10 ms
// minimum RTO the stranded copy would otherwise serve — and the cancelled
// copy never registers a timeout ("cancelled packets must not register as
// losses").
func TestRepFlowEscapesBlackholedPath(t *testing.T) {
	eng, nw, tr := repflowFabric(t)
	// Kill spine 0 silently: links stay up, everything transiting it drops.
	(&failure.Blackhole{
		Spine: nw.Spines[0],
		Match: func(src, dst int) bool { return true },
	}).Install()

	// Flow ids start at 1: the first copy (id 1) pins to the live spine 1,
	// the replica (id 2) to the dead spine 0. Swap roles by starting a
	// throwaway flow first so the primary is the doomed one.
	doomed := tr.StartFlow(1, 3, 1) // id 1 occupies the live slot
	g := tr.StartRepFlow(0, 2, 30_000)
	if g.Primary.CurPath != 0 && g.Primary.ID%2 != 0 {
		t.Fatalf("test setup: primary id %d should pin to spine 0", g.Primary.ID)
	}
	eng.Run(sim.Second)
	_ = doomed // stranded on the dead spine; irrelevant to the assertions

	if !g.Done {
		t.Fatal("RepFlow did not finish despite one healthy path")
	}
	if g.Winner != g.Replica {
		t.Fatalf("winner = primary (path %d); want the replica on the live spine",
			g.Primary.CurPath)
	}
	if tr.ReplicaWins != 1 {
		t.Fatalf("ReplicaWins = %d, want 1", tr.ReplicaWins)
	}
	if g.FCT() >= 10*sim.Millisecond {
		t.Fatalf("FCT %v not inside the stranded copy's RTO; replication did not help", g.FCT())
	}
	if !g.Primary.Cancelled {
		t.Fatal("stranded primary not cancelled")
	}
	if g.Primary.Timeouts() != 0 {
		t.Fatalf("cancelled copy served %d RTOs; cancellation must disarm the timer",
			g.Primary.Timeouts())
	}
}

// TestRepFlowCancelIsFinal: cancelling is idempotent, and a finished flow
// cannot be cancelled.
func TestRepFlowCancelIsFinal(t *testing.T) {
	eng, _, tr := repflowFabric(t)
	f := tr.StartFlow(0, 2, 10_000)
	eng.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow unfinished")
	}
	tr.CancelFlow(f)
	if f.Cancelled {
		t.Fatal("finished flow marked cancelled")
	}
	if tr.FlowsCancelled != 0 {
		t.Fatal("cancel of a finished flow counted")
	}

	g := tr.StartRepFlow(0, 2, 10_000)
	tr.CancelFlow(g.Replica)
	tr.CancelFlow(g.Replica) // second cancel is a no-op
	if tr.FlowsCancelled != 1 {
		t.Fatalf("FlowsCancelled = %d, want 1", tr.FlowsCancelled)
	}
	eng.Run(eng.Now() + sim.Second) // eng.Run takes an absolute deadline
	if !g.Done || g.Winner != g.Primary {
		t.Fatal("primary did not win after replica cancellation")
	}
}

// TestMPTCPSubflowsNeverRerouted pins the documented MPTCP contract: a
// subflow picks its path at its first segment and keeps it for life, even
// when that path blackholes mid-transfer. Resilience may only come from the
// pull scheduler starving the stalled subflow — never from rerouting it.
func TestMPTCPSubflowsNeverRerouted(t *testing.T) {
	eng, nw, tr := repflowFabric(t)
	g := tr.StartMPTCP(0, 2, 4_000_000, 2)
	if len(g.Subflows) != 2 {
		t.Fatalf("%d subflows, want 2", len(g.Subflows))
	}
	// Let both subflows start, then blackhole spine 0 under them.
	eng.Run(2 * sim.Millisecond)
	paths := make([]int, len(g.Subflows))
	for i, sf := range g.Subflows {
		if !sf.Started() {
			t.Fatalf("subflow %d not started before onset", i)
		}
		paths[i] = sf.CurPath
	}
	bh := &failure.Blackhole{
		Spine: nw.Spines[0],
		Match: func(src, dst int) bool { return true },
	}
	bh.Install()
	eng.Run(500 * sim.Millisecond)

	for i, sf := range g.Subflows {
		if sf.PathChanges != 0 {
			t.Errorf("subflow %d rerouted %d times; MPTCP subflows must stay pinned",
				i, sf.PathChanges)
		}
		if sf.CurPath != paths[i] {
			t.Errorf("subflow %d moved from path %d to %d", i, paths[i], sf.CurPath)
		}
	}
	// The subflow pinned to the dead spine must be stalled, not finished —
	// if this fires, the scenario stopped exercising the pin.
	stalled := false
	for _, sf := range g.Subflows {
		if nw.PathSpine(sf.CurPath) == 0 && !sf.Done {
			stalled = true
		}
	}
	if !stalled {
		t.Log("no subflow stranded on the dead spine; pin not exercised this run")
	}
	if g.Done {
		t.Error("MPTCP group finished through a blackholed subflow; pull scheduler must not bypass a stranded chunk")
	}
}
