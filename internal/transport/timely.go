package transport

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// TIMELY [26] is the RTT-gradient congestion control the paper cites for
// its RTT measurement methodology. It is included as an extension: the
// paper's experiments use DCTCP (and plain TCP in §5.4), but Hermes' RTT-only
// sensing mode pairs naturally with an RTT-based transport. The
// implementation follows the SIGCOMM'15 algorithm with the rate emulated
// through the congestion window (cwnd = rate x srtt), which preserves this
// transport's loss-recovery machinery while producing TIMELY's
// gradient-driven rate dynamics.

// TimelyParams are the algorithm constants from [26], scaled for the
// simulated fabrics.
type TimelyParams struct {
	TLow  sim.Time // below this RTT: pure additive increase
	THigh sim.Time // above this RTT: multiplicative decrease
	// AddStep is the additive increment in bits/s per update.
	AddStep float64
	// Beta is the multiplicative decrease factor.
	Beta float64
	// MinRateBps floors the sending rate.
	MinRateBps float64
	// EWMA gain for the RTT-difference filter.
	Alpha float64
	// HAI: after N consecutive gradient-negative updates, increase faster.
	HAIThresh int
}

// DefaultTimelyParams derives thresholds from the fabric's base RTT.
func DefaultTimelyParams(baseRTT sim.Time, linkBps int64) TimelyParams {
	return TimelyParams{
		TLow:       baseRTT + baseRTT/2,
		THigh:      baseRTT * 4,
		AddStep:    float64(linkBps) / 100, // 1% of line rate per update
		Beta:       0.8,
		MinRateBps: float64(linkBps) / 1000,
		Alpha:      0.875,
		HAIThresh:  5,
	}
}

// timelyState is the per-flow controller state.
type timelyState struct {
	rateBps   float64
	prevRTT   float64
	rttDiff   float64 // EWMA of consecutive RTT differences
	minRTT    float64
	negStreak int
}

// timelyUpdate implements the TIMELY rate computation on one RTT sample and
// refreshes the emulated window.
func (f *Flow) timelyUpdate(rtt sim.Time) {
	p := f.ep.tr.Opts.Timely
	ts := &f.timely
	r := float64(rtt)
	if ts.rateBps == 0 {
		// Initialize at 10 segments per RTT, TIMELY's equivalent of IW10.
		ts.rateBps = 10 * net.MSS * 8 * 1e9 / r
		ts.prevRTT = r
		ts.minRTT = r
	}
	if r < ts.minRTT {
		ts.minRTT = r
	}
	newDiff := r - ts.prevRTT
	ts.prevRTT = r
	ts.rttDiff = p.Alpha*ts.rttDiff + (1-p.Alpha)*newDiff
	gradient := ts.rttDiff / ts.minRTT

	switch {
	case rtt < p.TLow:
		ts.negStreak++
		ts.rateBps += p.AddStep
	case rtt > p.THigh:
		ts.negStreak = 0
		ts.rateBps *= 1 - p.Beta*(1-float64(p.THigh)/r)
	case gradient <= 0:
		ts.negStreak++
		step := p.AddStep
		if ts.negStreak >= p.HAIThresh {
			step *= 5 // hyperactive increase
		}
		ts.rateBps += step
	default:
		ts.negStreak = 0
		ts.rateBps *= 1 - p.Beta*gradient
	}
	if ts.rateBps < p.MinRateBps {
		ts.rateBps = p.MinRateBps
	}
	// Window emulation: one rate-delay product, floored at a segment.
	f.cwnd = maxf(ts.rateBps*f.srtt/8e9, net.MSS)
	f.ssthresh = f.cwnd
}

// TimelyRateBps exposes the controller's current rate (for tests).
func (f *Flow) TimelyRateBps() float64 { return f.timely.rateBps }
