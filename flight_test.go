package hermes

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/hermes-repro/hermes/internal/timeseries"
)

// flightConfig is a small Hermes run with the flight recorder on and a
// flapping leaf0-spine0 link: the link degrades to 1 Mbps at
// FlapPeriodNs-FlapDownNs = 4 ms and restores at 10 ms. The degradation (not
// a full cut) keeps probes flowing on the sick paths, which is how Hermes
// actually senses gray failures (§3.2: probing only covers available paths).
func flightConfig() Config {
	return Config{
		Topology: Topology{
			Leaves: 2, Spines: 2, HostsPerLeaf: 2,
			HostRateBps: 1e9, FabricRateBps: 1e9,
			HostDelayNs: 2000, FabricDelayNs: 2000,
		},
		Scheme:   SchemeHermes,
		Workload: "web-search",
		Load:     0.6,
		Flows:    80,
		Seed:     7,
		Failure: FailureSpec{
			Kind: FailureFlap, CutLeaf: 0, CutSpine: 0,
			FlapPeriodNs: 10e6, FlapDownNs: 6e6, DegradedBps: 1e6,
		},
		TimeSeries:           true,
		TimeSeriesIntervalNs: 100_000,
		TimeSeriesCap:        32768, // the flap stretches the run well past the default cap
		DrainTimeoutNs:       500e6,
	}
}

func timeseriesBytes(t *testing.T, rec *timeseries.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTimeSeriesParallelMatchesSequential extends the worker-pool
// determinism guarantee to the flight recorder: the serialized time series
// (samples, every registered series, the transition log) must be
// byte-identical between a sequential Run and RunParallel for each seed.
func TestTimeSeriesParallelMatchesSequential(t *testing.T) {
	seeds := Seeds(7, 3)
	if testing.Short() {
		seeds = Seeds(7, 2)
	}
	cfg := flightConfig()

	seq := make([][]byte, len(seeds))
	for i, s := range seeds {
		c := cfg
		c.Seed = s
		res, err := Run(c)
		if err != nil {
			t.Fatalf("sequential seed %d: %v", s, err)
		}
		seq[i] = timeseriesBytes(t, res.TimeSeries)
	}

	par, err := RunParallelOpts(context.Background(), cfg, seeds,
		ParallelOptions{Workers: len(seeds)})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	for i, s := range seeds {
		if got := timeseriesBytes(t, par[i].TimeSeries); !bytes.Equal(got, seq[i]) {
			t.Errorf("seed %d: parallel time series differs from sequential (%d vs %d bytes)",
				s, len(got), len(seq[i]))
		}
	}
}

// TestTimeSeriesWriterRejectedUnderRunParallel pins the guard: a shared
// export writer cannot be split across concurrent runs.
func TestTimeSeriesWriterRejectedUnderRunParallel(t *testing.T) {
	cfg := flightConfig()
	cfg.TimeSeriesWriter = &bytes.Buffer{}
	if _, err := RunParallel(cfg, Seeds(1, 2)); err == nil {
		t.Fatal("RunParallel accepted a shared TimeSeriesWriter")
	}
}

// TestFlightRecorderCapturesLinkFlap is the acceptance check for the flight
// recorder: with a link degradation injected mid-run it must record
// (a) per-port queue-depth series aligned with the sample clock,
// (b) a Hermes path census whose good/bad occupancy visibly shifts within
// one probe interval of the cut, and (c) state transitions in the log
// explaining the shift.
func TestFlightRecorderCapturesLinkFlap(t *testing.T) {
	cfg := flightConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.TimeSeries
	if rec == nil || rec.Len() == 0 {
		t.Fatal("Config.TimeSeries produced no recording")
	}

	// (a) Per-port queue depth, sampled on the recorder clock.
	queuePorts := 0
	for _, name := range rec.Names() {
		if !strings.HasPrefix(name, "net.port.queue_bytes{port=") {
			continue
		}
		queuePorts++
		if got := len(rec.Series(name)); got != rec.Len() {
			t.Fatalf("series %s has %d samples, want %d", name, got, rec.Len())
		}
	}
	if want := 2 * 2 * 2; queuePorts != want { // leaf up + spine down per pair
		t.Fatalf("queue-depth series for %d fabric ports, want %d", queuePorts, want)
	}

	// (b) Census shift: compare the last pre-cut sample against the window
	// shortly after the cut at 4 ms. The first post-cut probe is dispatched
	// within one probe interval (500 us); its return — slowed to ~1 ms by
	// the degraded link it is sensing — lands the demotion.
	const (
		cutNs    = int64(4e6) // FlapPeriodNs - FlapDownNs
		windowNs = cutNs + 2_000_000
	)
	sumAt := func(metric string, i int) float64 {
		var s float64
		for _, name := range rec.Names() {
			if strings.HasPrefix(name, "hermes.paths_"+metric+"{") {
				s += rec.Series(name)[i]
			}
		}
		return s
	}
	times := rec.Times()
	pre, post := -1, -1
	for i, at := range times {
		if at <= cutNs {
			pre = i
		}
		if at <= windowNs {
			post = i
		}
	}
	if pre < 0 || post <= pre {
		t.Fatalf("recording does not span the cut: %d samples over [%d, %d]",
			len(times), times[0], times[len(times)-1])
	}
	preBad := sumAt("congested", pre) + sumAt("failed", pre)
	postBad := sumAt("congested", post) + sumAt("failed", post)
	preGood := sumAt("good", pre)
	postGood := sumAt("good", post)
	if postBad <= preBad && postGood >= preGood {
		t.Errorf("census did not shift within one probe interval of the cut: "+
			"good %v -> %v, congested+failed %v -> %v", preGood, postGood, preBad, postBad)
	}

	// (c) The transition log explains the shift: some path left the good
	// state (or turned congested/failed) inside the window.
	found := false
	for _, tr := range rec.Transitions() {
		if tr.AtNs > cutNs && tr.AtNs <= windowNs &&
			(tr.From == "good" || tr.To == "congested" || tr.To == "failed") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no path-state transition away from good in (%d, %d]; %d transitions total",
			cutNs, windowNs, len(rec.Transitions()))
	}
}
