package hermes

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chaosTopo is a 2x2 fabric where a spine-0 blackhole eats half of ECMP's
// hash space and part of every Presto* spray — enough for a clear goodput dip.
func chaosTopo() Topology {
	return Topology{
		Leaves: 2, Spines: 2, HostsPerLeaf: 4,
		HostRateBps: 1e9, FabricRateBps: 2e9,
		HostDelayNs: 2000, FabricDelayNs: 2000,
	}
}

func chaosConfig(scheme Scheme, scenario *Scenario) Config {
	return Config{
		Topology: chaosTopo(), Scheme: scheme,
		Workload: "web-search", Load: 0.5,
		Flows: flowCount(60, 40), Seed: 11,
		Scenario:       scenario,
		DrainTimeoutNs: 300e6,
	}
}

// TestChaosBlackholeRecoveryAcceptance reproduces the §5.3.3 ordering under
// the scenario engine: with an identical blackhole timeline and seed, Hermes
// detects and reroutes within a few RTOs while ECMP and Presto* — blind to
// path health — stay in the goodput dip long after (Presto* until traffic
// ends). The acceptance bound: Hermes's detection and reroute latencies are
// finite and at least 5x smaller than the baselines' dip durations.
func TestChaosBlackholeRecoveryAcceptance(t *testing.T) {
	scenario, err := BuiltinScenario("spine-blackhole", chaosTopo())
	if err != nil {
		t.Fatal(err)
	}
	recoveryOf := func(scheme Scheme) *EventRecovery {
		res := mustRun(t, chaosConfig(scheme, scenario))
		if res.Recovery == nil || len(res.Recovery.Events) != 1 {
			t.Fatalf("%s: Recovery missing or wrong arity: %+v", scheme, res.Recovery)
		}
		e := &res.Recovery.Events[0]
		t.Logf("%-8s detect=%6.2fms reroute=%6.2fms dip: depth=%.2f dur=%6.2fms integral=%.1f Gbps*ms",
			scheme, float64(e.TimeToDetectNs)/1e6, float64(e.TimeToRerouteNs)/1e6,
			e.DipDepth, float64(e.DipDurationNs)/1e6, e.DipIntegralGbpsMs)
		return e
	}

	hermes := recoveryOf(SchemeHermes)
	if hermes.TimeToDetectNs < 0 {
		t.Fatal("hermes never detected the blackhole")
	}
	if hermes.TimeToRerouteNs < 0 {
		t.Fatal("hermes never rerouted off the blackholed paths")
	}

	for _, blind := range []Scheme{SchemeECMP, SchemePresto} {
		e := recoveryOf(blind)
		if e.TimeToDetectNs >= 0 {
			t.Errorf("%s claims a detection transition; it has no path-state machine", blind)
		}
		if e.DipDurationNs <= 0 {
			t.Fatalf("%s rode through a spine blackhole (dip %d); scenario too weak",
				blind, e.DipDurationNs)
		}
		if e.DipDurationNs < 5*hermes.TimeToDetectNs {
			t.Errorf("%s dip %dns is not ≥5x hermes detect %dns",
				blind, e.DipDurationNs, hermes.TimeToDetectNs)
		}
		if e.DipDurationNs < 5*hermes.TimeToRerouteNs {
			t.Errorf("%s dip %dns is not ≥5x hermes reroute %dns",
				blind, e.DipDurationNs, hermes.TimeToRerouteNs)
		}
	}
}

// TestChaosRecoveryDeterministicParallel extends the worker-pool determinism
// guarantee to the chaos engine: Result.Recovery and the flight recording of
// a two-failure scenario must be byte-identical between sequential Run and
// RunParallel for every seed.
func TestChaosRecoveryDeterministicParallel(t *testing.T) {
	scenario, err := BuiltinScenario("multi", chaosTopo())
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(SchemeHermes, scenario)
	cfg.Flows = flowCount(80, 50)
	seeds := Seeds(3, 3)
	if testing.Short() {
		seeds = Seeds(3, 2)
	}

	seqRecovery := make([][]byte, len(seeds))
	seqSeries := make([][]byte, len(seeds))
	for i, seed := range seeds {
		c := cfg
		c.Seed = seed
		res := mustRun(t, c)
		if res.Recovery == nil || len(res.Recovery.Events) != 2 {
			t.Fatalf("seed %d: want 2 recovery events, got %+v", seed, res.Recovery)
		}
		b, err := json.Marshal(res.Recovery)
		if err != nil {
			t.Fatal(err)
		}
		seqRecovery[i] = b
		seqSeries[i] = timeseriesBytes(t, res.TimeSeries)
	}

	par, err := RunParallel(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range par {
		b, err := json.Marshal(res.Recovery)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seqRecovery[i], b) {
			t.Errorf("seed %d: Recovery differs between sequential and parallel:\nseq: %s\npar: %s",
				seeds[i], seqRecovery[i], b)
		}
		if !bytes.Equal(seqSeries[i], timeseriesBytes(t, res.TimeSeries)) {
			t.Errorf("seed %d: flight recording differs between sequential and parallel", seeds[i])
		}
	}
}

// TestChaosScenarioValidation: malformed failure parameters and impossible
// timelines come back as errors from Run, never panics or silent clamps.
func TestChaosScenarioValidation(t *testing.T) {
	base := Config{
		Topology: chaosTopo(), Scheme: SchemeECMP,
		Workload: "web-search", Load: 0.5, Flows: 20, Seed: 1,
	}
	expectErr := func(name string, cfg Config, want string) {
		t.Helper()
		_, err := Run(cfg)
		if err == nil {
			t.Errorf("%s: accepted", name)
		} else if !strings.Contains(err.Error(), want) {
			t.Errorf("%s: error %q does not mention %q", name, err, want)
		}
	}

	bad := base
	bad.Failure = FailureSpec{Kind: FailureBlackhole, Spine: 99}
	expectErr("static spine out of range", bad, "out of range")

	bad = base
	bad.Failure = FailureSpec{Kind: FailureRandomDrop, DropRate: -0.5}
	expectErr("static negative rate", bad, "DropRate")

	bad = base
	bad.Failure = FailureSpec{Kind: FailureCutLink, CutLeaf: 7, CutSpine: 0}
	expectErr("static leaf out of range", bad, "CutLeaf")

	bad = base
	bad.Failure = FailureSpec{Kind: FailureFlap, FlapPeriodNs: 10e6, FlapDownNs: 20e6}
	expectErr("flap down >= period", bad, "FlapDownNs")

	bad = base
	bad.Scenario = &Scenario{Name: "bad", Events: []ScenarioEvent{
		{AtNs: 1e6, Name: "x", Failure: FailureSpec{Kind: FailureRandomDrop, Spine: -2}},
	}}
	expectErr("scenario spine out of range", bad, "out of range")

	bad = base
	bad.Scenario = &Scenario{Name: "bad", Events: []ScenarioEvent{
		{AtNs: 1e6, Name: "x", Failure: FailureSpec{Kind: FailureFlap}},
	}}
	expectErr("flap as scenario injection", bad, "event machinery")

	bad = base
	bad.Failure = FailureSpec{Kind: FailureFlap, CutLeaf: 0, CutSpine: 0}
	bad.Scenario = &Scenario{Name: "also", Events: []ScenarioEvent{
		{AtNs: 1e6, Name: "x", Failure: FailureSpec{Kind: FailureRandomDrop}},
	}}
	expectErr("flap sugar combined with scenario", bad, "scenario sugar")

	// A one-shot event past the end of the run is a scenario bug, not a
	// silently empty recovery report.
	bad = base
	bad.Scenario = &Scenario{Name: "late", Events: []ScenarioEvent{
		{AtNs: int64(3600e9), Name: "x", Failure: FailureSpec{Kind: FailureRandomDrop}},
	}}
	expectErr("event past run end", bad, "never fired")

	bad = base
	bad.Scenario = &Scenario{Name: "dangling", Events: []ScenarioEvent{
		{AtNs: 1e6, Clear: "ghost"},
	}}
	expectErr("clear without inject", bad, "ghost")
}

// TestChaosSwitchDownSugar: the static spine-down failure kind lowers onto
// the scenario machinery and still produces a recovery report.
func TestChaosSwitchDownSugar(t *testing.T) {
	cfg := chaosConfig(SchemeHermes, nil)
	cfg.Flows = flowCount(80, 50)
	cfg.Failure = FailureSpec{Kind: FailureSpineDown, Spine: 1}
	res := mustRun(t, cfg)
	if res.Recovery == nil || len(res.Recovery.Events) != 1 {
		t.Fatalf("Recovery missing for spine-down sugar: %+v", res.Recovery)
	}
	e := res.Recovery.Events[0]
	if e.Kind != "spine-down" || e.OnsetNs != 0 || e.ClearNs != -1 {
		t.Errorf("unexpected activation record: %+v", e)
	}
	if res.FCT.Unfinished != 0 {
		t.Errorf("%d flows stranded: hermes must route around a dead spine", res.FCT.Unfinished)
	}
	// Sugar kinds keep their static failure tag in the flight metadata.
	if res.TimeSeries.Meta.Failure != "spine-down" {
		t.Errorf("Meta.Failure = %q", res.TimeSeries.Meta.Failure)
	}
}

// TestRunChaosMatrix: the resilience matrix sweeps schemes x scenarios x
// seeds on one pool, scores every cell against the scheme's clean baseline,
// and ranks Hermes ahead of the detection-blind schemes — the §5.3.2/§5.3.3
// ordering. Also pins pool-size independence and the scorecard rendering.
func TestRunChaosMatrix(t *testing.T) {
	base := chaosConfig(SchemeHermes, nil)
	base.Flows = flowCount(60, 40)
	spineBH, err := BuiltinScenario("spine-blackhole", base.Topology)
	if err != nil {
		t.Fatal(err)
	}
	dropRec, err := BuiltinScenario("drop-recover", base.Topology)
	if err != nil {
		t.Fatal(err)
	}
	mc := ChaosMatrixConfig{
		Base:      base,
		Schemes:   []Scheme{SchemeHermes, SchemeECMP, SchemePresto},
		Scenarios: []*Scenario{spineBH, dropRec},
		Seeds:     Seeds(11, 2),
	}
	m, err := RunChaosMatrix(context.Background(), mc)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 6 {
		t.Fatalf("%d cells, want 6", len(m.Cells))
	}
	for _, scheme := range mc.Schemes {
		if m.BaselineP99Ms[scheme] <= 0 {
			t.Errorf("%s: clean baseline p99 missing", scheme)
		}
	}
	hermes := m.Cell(SchemeHermes, "spine-blackhole")
	if hermes.DetectedRuns != hermes.Runs || hermes.MeanDetectMs < 0 {
		t.Errorf("hermes detected %d/%d runs (mean %.2fms); want all",
			hermes.DetectedRuns, hermes.Runs, hermes.MeanDetectMs)
	}
	for _, blind := range []Scheme{SchemeECMP, SchemePresto} {
		c := m.Cell(blind, "spine-blackhole")
		if c.DetectedRuns != 0 || c.MeanDetectMs >= 0 {
			t.Errorf("%s claims detection under spine-blackhole: %+v", blind, c)
		}
		if c.WorstDipMs.Mean <= hermes.WorstDipMs.Mean {
			t.Errorf("%s dip %.2fms not worse than hermes %.2fms",
				blind, c.WorstDipMs.Mean, hermes.WorstDipMs.Mean)
		}
	}
	if m.Ranking[0].Scheme != SchemeHermes {
		t.Errorf("ranking[0] = %s, want hermes (ranking: %+v)", m.Ranking[0].Scheme, m.Ranking)
	}

	// Worker count must not leak into the matrix.
	mc2 := mc
	mc2.Options = ParallelOptions{Workers: 1}
	m2, err := RunChaosMatrix(context.Background(), mc2)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(m)
	jb, _ := json.Marshal(m2)
	if !bytes.Equal(ja, jb) {
		t.Errorf("matrix differs by worker count:\n%s\n%s", ja, jb)
	}

	var buf bytes.Buffer
	if err := m.RenderText(&buf, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"recovery scorecard", "spine-blackhole", "drop-recover",
		"hermes", "ecmp", "presto", "ranking"} {
		if !strings.Contains(out, want) {
			t.Errorf("scorecard missing %q:\n%s", want, out)
		}
	}

	// Config validation: empty axes and unnamed scenarios are errors.
	if _, err := RunChaosMatrix(context.Background(), ChaosMatrixConfig{Base: base}); err == nil {
		t.Error("empty matrix accepted")
	}
	bad := mc
	bad.Scenarios = []*Scenario{{Events: spineBH.Events}}
	if _, err := RunChaosMatrix(context.Background(), bad); err == nil {
		t.Error("unnamed scenario accepted")
	}
	bad = mc
	bad.Scenarios = []*Scenario{spineBH, spineBH}
	if _, err := RunChaosMatrix(context.Background(), bad); err == nil {
		t.Error("duplicate scenario names accepted")
	}
}

// TestChaosScorecardGolden byte-pins a small resilience matrix featuring the
// post-Hermes schemes (REPS, RepFlow) next to Hermes itself. The matrix JSON
// is a pure function of (ChaosMatrixConfig, Seeds) — no manifest, no wall
// clock — so any drift in scheme behavior, recovery scoring or scorecard
// schema shows up as a reviewable diff. Regenerate with
// `go test -run ChaosScorecardGolden -update`.
func TestChaosScorecardGolden(t *testing.T) {
	base := chaosConfig(SchemeHermes, nil)
	base.Flows = 40 // fixed, NOT flowCount: the golden must not depend on -short
	spineBH, err := BuiltinScenario("spine-blackhole", base.Topology)
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunChaosMatrix(context.Background(), ChaosMatrixConfig{
		Base:      base,
		Schemes:   []Scheme{SchemeHermes, SchemeREPS, SchemeRepFlow},
		Scenarios: []*Scenario{spineBH},
		Seeds:     Seeds(11, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "chaos_scorecard_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("scorecard differs from %s (len %d vs %d); regenerate with -update and review",
			path, len(got), len(want))
	}

	// Every cell must carry recovery metrics, and the new schemes must be
	// honest about lacking a detector.
	for _, scheme := range []Scheme{SchemeREPS, SchemeRepFlow} {
		c := m.Cell(scheme, "spine-blackhole")
		if c == nil || c.Runs == 0 {
			t.Fatalf("%s: missing scorecard cell", scheme)
		}
		if c.DetectedRuns != 0 {
			t.Errorf("%s claims a detection transition; it has no path-state machine", scheme)
		}
	}
}

// TestRandomScenarioDeterministic: the generated timeline is a pure function
// of (topology, seed, intensity) and passes its own validation end to end.
func TestRandomScenarioDeterministic(t *testing.T) {
	a := RandomScenario(chaosTopo(), 42, 0.8)
	b := RandomScenario(chaosTopo(), 42, 0.8)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed, different scenario:\n%s\n%s", ja, jb)
	}
	if c := RandomScenario(chaosTopo(), 43, 0.8); func() bool {
		jc, _ := json.Marshal(c)
		return bytes.Equal(ja, jc)
	}() {
		t.Error("different seeds produced identical scenarios")
	}

	cfg := chaosConfig(SchemeHermes, a)
	cfg.Flows = flowCount(80, 50)
	res := mustRun(t, cfg)
	if res.Recovery == nil || len(res.Recovery.Events) == 0 {
		t.Fatal("random scenario produced no recovery events")
	}
	for _, e := range res.Recovery.Events {
		if e.ClearNs < 0 {
			t.Errorf("random scenario event %q never cleared", e.Name)
		}
	}
}
