package hermes

import (
	"fmt"
	"io"

	"github.com/hermes-repro/hermes/internal/alert"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/timeseries"
)

// Alert-layer types re-exported so callers can arm rules and read reports
// without importing internal/. See internal/alert for semantics.
type (
	// AlertRule is one declarative SLO condition over a flight-recorder
	// series: a predicate (above/below/rate-above/dip/spike/absent), a
	// for-duration hold, and a severity.
	AlertRule = alert.Rule
	// AlertReport is the end-of-run alert summary on Result.Alerts:
	// every episode with its pending/firing/resolved instants and cause,
	// plus the lifecycle event log.
	AlertReport = alert.Report
	// AlertEvent is one lifecycle edge (pending -> firing -> resolved).
	AlertEvent = alert.Event
)

// Builtin alert rule names (see internal/alert.Builtin).
const (
	AlertGoodputDip      = alert.RuleGoodputDip
	AlertP99FCTInflation = alert.RuleP99FCTInflation
	AlertQueueSaturation = alert.RuleQueueSaturation
	AlertGrayPathDwell   = alert.RuleGrayPathDwell
)

// AlertsConfig arms the SLO watchdog for a run. Setting it implies the
// flight recorder (the evaluator runs on sample boundaries); leaving
// Config.Alerts nil keeps the recorder hot path and every report byte
// unchanged. Evaluation is driven by the virtual clock, so alert logs are
// a pure function of (config, seed) — byte-identical under RunParallel.
type AlertsConfig struct {
	// Builtin arms the standard pack: goodput-dip, p99-fct-inflation,
	// queue-saturation (sized to the fabric's queue capacity), and
	// gray-path-dwell.
	Builtin bool `json:",omitempty"`
	// Rules appends user rules after the builtin pack.
	Rules []AlertRule `json:",omitempty"`
	// MaxEvents bounds the lifecycle event log
	// (0 = alert.DefaultMaxEvents).
	MaxEvents int `json:",omitempty"`
}

// rules materializes the armed rule set for one run.
func (ac *AlertsConfig) rules(flight *timeseries.Recorder, nw *net.Network) ([]alert.Rule, error) {
	var rules []alert.Rule
	if ac.Builtin {
		rules = alert.Builtin(alert.BuiltinParams{
			IntervalNs:    int64(flight.Interval),
			QueueCapBytes: float64(nw.MaxFabricQueueCap()),
		})
	}
	rules = append(rules, ac.Rules...)
	if len(rules) == 0 {
		return nil, fmt.Errorf("hermes: Config.Alerts set but no rules armed (set Builtin or Rules)")
	}
	return rules, nil
}

// ValidateAlertRules checks a user rule set eagerly (the same validation
// alert.New applies); CLIs use it to reject bad -alert-rules files before
// starting a sweep.
func ValidateAlertRules(rules []AlertRule) error {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// AlertRunLog is one run's worth of a parsed alert log.
type AlertRunLog = alert.RunLog

// WriteAlertLog appends one run's alert report to w as JSONL; read it back
// with ReadAlertLog or render it with hermes-trace -alerts.
func WriteAlertLog(w io.Writer, label string, rep *AlertReport) error {
	return alert.WriteRunLog(w, label, rep)
}

// ReadAlertLog parses a JSONL alert log produced by WriteAlertLog or
// ChaosMatrixConfig.AlertLog back into per-run reports.
func ReadAlertLog(r io.Reader) ([]AlertRunLog, error) {
	return alert.ReadLog(r)
}

// RenderAlertText writes the human-readable view of one alert report:
// summary, per-episode lines, and a per-rule state timeline.
func RenderAlertText(w io.Writer, rep *AlertReport, width int) error {
	return alert.RenderText(w, rep, width)
}
