package hermes

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hermes-repro/hermes/internal/lb"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
	"github.com/hermes-repro/hermes/internal/workload"
)

// newStack builds a minimal fabric + transport with ECMP for direct tests
// of internal generators.
func newStack(t *testing.T) (*sim.Engine, *net.Network, *transport.Transport) {
	t.Helper()
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: 4, Spines: 4, HostsPerLeaf: 4,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 2000, FabricDelay: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := &lb.ECMP{Net: nw}
	tr := transport.New(nw, transport.DefaultOptions(), func(*net.Host) transport.Balancer { return e })
	return eng, nw, tr
}

func TestEdgeFlowletAndHulaRun(t *testing.T) {
	for _, sch := range []Scheme{SchemeEdgeFlowlet, SchemeHULA} {
		res := mustRun(t, Config{
			Topology: smallTopo(), Scheme: sch,
			Workload: "web-search", Load: 0.5, Flows: 120, Seed: 9,
		})
		if res.FCT.Unfinished != 0 {
			t.Fatalf("%s: %d unfinished flows", sch, res.FCT.Unfinished)
		}
	}
}

func TestRunSeedsAggregates(t *testing.T) {
	cfg := Config{
		Topology: smallTopo(), Scheme: SchemeECMP,
		Workload: "web-search", Load: 0.5, Flows: 60,
	}
	results, st, err := RunSeeds(cfg, Seeds(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || st.N != 3 {
		t.Fatalf("got %d results, stats N=%d", len(results), st.N)
	}
	if st.Min > st.Mean || st.Mean > st.Max {
		t.Fatalf("stats ordering broken: min=%v mean=%v max=%v", st.Min, st.Mean, st.Max)
	}
	if st.StdDev < 0 {
		t.Fatal("negative stddev")
	}
	// Different seeds should produce different means (heavy-tailed sizes).
	if st.Min == st.Max {
		t.Fatal("all seeds produced identical results")
	}
}

func TestRunSeedsEmpty(t *testing.T) {
	if _, _, err := RunSeeds(Config{}, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

func TestSeedsHelper(t *testing.T) {
	s := Seeds(5, 4)
	want := []int64{5, 6, 7, 8}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Seeds(5,4) = %v", s)
		}
	}
}

func TestDeriveHermesParams(t *testing.T) {
	p, err := DeriveHermesParams(LargeScaleTopology())
	if err != nil {
		t.Fatal(err)
	}
	// §3.3 anchors: T_ECN = 40%, S in 100-800 KB, R = 30% of access link,
	// T_RTT_high within sane bounds for 10G fabrics (paper: 180 us).
	if p.TECN != 0.40 {
		t.Fatalf("TECN = %v", p.TECN)
	}
	if p.SBytes < 100_000 || p.SBytes > 800_000 {
		t.Fatalf("SBytes = %d out of the recommended range", p.SBytes)
	}
	if p.RBps != 0.3*10e9 {
		t.Fatalf("RBps = %v", p.RBps)
	}
	if p.TRTTHigh < 100_000 || p.TRTTHigh > 300_000 {
		t.Fatalf("TRTTHigh = %d ns, want ~180 us for a 10G fabric", p.TRTTHigh)
	}
	if _, err := DeriveHermesParams(Topology{}); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestTuneHermesImprovesOrKeepsScore(t *testing.T) {
	cfg := Config{
		Topology: smallTopo(),
		Workload: "data-mining", Load: 0.6, Flows: 60,
		Failure: FailureSpec{Kind: FailureDegrade, Fraction: 0.2, DegradedBps: 2e9},
	}
	base, err := DeriveHermesParams(cfg.Topology)
	if err != nil {
		t.Fatal(err)
	}
	// Restrict to two cheap dimensions to keep the test fast.
	dims := DefaultTuneDimensions(base)[:2]
	res, err := TuneHermes(cfg, dims, Seeds(1, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs == 0 || len(res.Trace) == 0 {
		t.Fatal("tuner did not evaluate any candidates")
	}
	// The tuned score can never be worse than every evaluated candidate.
	for _, step := range res.Trace {
		if step.Accepted && step.ScoreMs < res.ScoreMs {
			t.Fatalf("accepted step %.3f better than final %.3f", step.ScoreMs, res.ScoreMs)
		}
	}
	if res.String() == "" {
		t.Fatal("empty trace rendering")
	}
}

func TestIncastGenerator(t *testing.T) {
	// Drive the incast generator directly against a fresh internal stack.
	res := make(map[int]sim.Time)
	eng, nw, tr := newStack(t)
	ic := &workload.Incast{
		Net: nw, Tr: tr, Rng: sim.NewRNG(4),
		FanIn: 6, ChunkBytes: 64_000, Interval: 5 * sim.Millisecond, Events: 5,
		OnDone: func(ev int, dur sim.Time) { res[ev] = dur },
	}
	ic.Start()
	eng.Run(sim.Second)
	if ic.Started() != 5 {
		t.Fatalf("generated %d/5 incasts", ic.Started())
	}
	if len(res) != 5 {
		t.Fatalf("only %d/5 incast completions observed", len(res))
	}
	for ev, dur := range res {
		if dur <= 0 || dur > 100*sim.Millisecond {
			t.Fatalf("incast %d duration %v implausible", ev, dur)
		}
	}
}

func TestMPTCPSchemeRuns(t *testing.T) {
	res := mustRun(t, Config{
		Topology: smallTopo(), Scheme: SchemeMPTCP,
		Workload: "web-search", Load: 0.5, Flows: 100, Seed: 9,
	})
	if res.FCT.Flows != 100 {
		t.Fatalf("recorded %d/100 logical flows", res.FCT.Flows)
	}
	if res.FCT.Unfinished != 0 {
		t.Fatalf("%d unfinished logical flows", res.FCT.Unfinished)
	}
}

func TestMPTCPIncastPenalty(t *testing.T) {
	// §5.1/§7: MPTCP suffers in incast because each logical flow opens
	// several connections. With heavy fan-in of small flows, MPTCP's
	// small-flow tail should not beat plain ECMP's.
	cfg := Config{
		Topology: smallTopo(), Workload: "web-search",
		Load: 0.8, Flows: flowCount(250, 120), Seed: 12, MPTCPSubflows: 8,
	}
	cfg.Scheme = SchemeECMP
	ecmp := mustRun(t, cfg)
	cfg.Scheme = SchemeMPTCP
	mp := mustRun(t, cfg)
	if mp.FCT.Small.P99 < ecmp.FCT.Small.P99/2 {
		t.Fatalf("MPTCP small-flow p99 (%v) implausibly better than ECMP (%v)",
			mp.FCT.Small.P99, ecmp.FCT.Small.P99)
	}
}

func TestTraceThroughFacade(t *testing.T) {
	var sb strings.Builder
	res := mustRun(t, Config{
		Topology: smallTopo(), Scheme: SchemeHermes,
		Workload: "web-search", Load: 0.5, Flows: 50, Seed: 2,
		TraceWriter: &sb,
	})
	if res.TraceCounts["start"] != 50 || res.TraceCounts["done"] != 50 {
		t.Fatalf("trace counts = %v, want 50 starts and dones", res.TraceCounts)
	}
	if !strings.Contains(sb.String(), `"kind":"place"`) {
		t.Fatal("no placement events in the JSONL stream")
	}
}

func TestTimelyProtocolThroughFacade(t *testing.T) {
	res := mustRun(t, Config{
		Topology: smallTopo(), Scheme: SchemeHermes, Protocol: "timely",
		Workload: "web-search", Load: 0.4, Flows: 80, Seed: 3,
	})
	if res.FCT.Unfinished != 0 {
		t.Fatalf("%d unfinished flows under TIMELY", res.FCT.Unfinished)
	}
}

func TestFlapThroughFacade(t *testing.T) {
	// A flapping link must not strand flows for Hermes: detection routes
	// around the dips and quarantine expires after restoration.
	res := mustRun(t, Config{
		Topology: smallTopo(), Scheme: SchemeHermes,
		Workload: "web-search", Load: 0.4, Flows: 150, Seed: 5,
		Failure: FailureSpec{
			Kind: FailureFlap, CutLeaf: 0, CutSpine: 1,
			FlapPeriodNs: int64(100e6), FlapDownNs: int64(40e6),
		},
	})
	if res.FCT.Unfinished != 0 {
		t.Fatalf("%d flows stranded by a flapping link", res.FCT.Unfinished)
	}
}

func TestGoodputReported(t *testing.T) {
	res := mustRun(t, Config{
		Topology: smallTopo(), Scheme: SchemeECMP,
		Workload: "web-search", Load: 0.5, Flows: 100, Seed: 1,
	})
	if res.GoodputGbps <= 0 {
		t.Fatal("goodput not reported")
	}
	if res.FabricUtilization <= 0 || res.FabricUtilization > 1.2 {
		t.Fatalf("fabric utilization %.3f implausible", res.FabricUtilization)
	}
}

func TestWCMPSchemeBeatsECMPUnderAsymmetry(t *testing.T) {
	cfg := Config{
		Topology: smallTopo(), Workload: "web-search", Load: 0.6, Flows: 250, Seed: 4,
		Failure: FailureSpec{Kind: FailureDegrade, Fraction: 0.2, DegradedBps: 2e9},
	}
	cfg.Scheme = SchemeECMP
	e := mustRun(t, cfg)
	cfg.Scheme = SchemeWCMP
	w := mustRun(t, cfg)
	if w.FCT.Overall.Mean >= e.FCT.Overall.Mean {
		t.Fatalf("WCMP (%.3f ms) not better than ECMP (%.3f ms) on an asymmetric fabric",
			w.FCT.Overall.MeanMs(), e.FCT.Overall.MeanMs())
	}
}

func TestTestbedCableCut(t *testing.T) {
	// The testbed has 4 x 1G paths; cutting one cable must leave every
	// scheme functional with 3 paths and Hermes ahead of ECMP on average.
	// Single testbed-scale runs are heavy-tail noisy, so compare seed
	// averages (the paper averages 5 runs, §5.1).
	cfg := Config{
		Topology: TestbedTopology(), Workload: "web-search",
		Load: 0.5, Flows: flowCount(500, 250),
		Failure: FailureSpec{Kind: FailureCutCable, CutLeaf: 1, CutSpine: 1},
	}
	seeds := Seeds(1, 2)
	cfg.Scheme = SchemeECMP
	eRes, eStats, err := RunSeeds(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheme = SchemeHermes
	hRes, hStats, err := RunSeeds(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if eRes[i].FCT.Unfinished != 0 || hRes[i].FCT.Unfinished != 0 {
			t.Fatal("cable cut stranded flows")
		}
	}
	// The seed-averaged ranking needs the full replay count to be stable;
	// short mode (the -race pass) only exercises the scenario.
	if !testing.Short() && hStats.Mean >= eStats.Mean {
		t.Fatalf("Hermes %.2f ms not ahead of ECMP %.2f ms after cable cut (seed avg)",
			hStats.Mean, eStats.Mean)
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	cfg := Config{
		Topology: smallTopo(), Scheme: SchemeHermes,
		Workload: "web-search", Load: 0.5, Flows: 60,
	}
	par, err := RunParallel(cfg, Seeds(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range Seeds(1, 4) {
		c := cfg
		c.Seed = s
		seq, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if par[i].FCT.Overall.Mean != seq.FCT.Overall.Mean || par[i].Events != seq.Events {
			t.Fatalf("seed %d: parallel run diverged from sequential", s)
		}
	}
	var sb strings.Builder
	cfg.TraceWriter = &sb
	if _, err := RunParallel(cfg, Seeds(1, 2)); err == nil {
		t.Fatal("shared TraceWriter accepted in parallel mode")
	}
}

func TestDegradeSpineHeterogeneity(t *testing.T) {
	// One slow spine (the §2.1 heterogeneous-device asymmetry): every
	// scheme must still finish; Hermes must beat ECMP.
	cfg := Config{
		Topology: smallTopo(), Workload: "web-search", Load: 0.6, Flows: 250, Seed: 6,
		Failure: FailureSpec{Kind: FailureDegradeSpine, Spine: 2, DegradedBps: 2e9},
	}
	cfg.Scheme = SchemeECMP
	e := mustRun(t, cfg)
	cfg.Scheme = SchemeHermes
	h := mustRun(t, cfg)
	if e.FCT.Unfinished+h.FCT.Unfinished != 0 {
		t.Fatal("stranded flows under a slow spine")
	}
	if h.FCT.Overall.Mean >= e.FCT.Overall.Mean {
		t.Fatalf("Hermes %.3f ms not ahead of ECMP %.3f ms with a slow spine",
			h.FCT.Overall.MeanMs(), e.FCT.Overall.MeanMs())
	}
}

func TestQueueFactorChangesDynamics(t *testing.T) {
	shallow := smallTopo()
	shallow.QueueFactor = 2
	deep := smallTopo()
	deep.QueueFactor = 8
	cfg := Config{Workload: "web-search", Load: 0.8, Flows: 200, Seed: 3, Scheme: SchemeECMP}
	cfg.Topology = shallow
	a := mustRun(t, cfg)
	cfg.Topology = deep
	b := mustRun(t, cfg)
	if a.FCT.Overall.Mean == b.FCT.Overall.Mean {
		t.Fatal("queue factor had no effect at 80% load")
	}
}

func TestComparisonMatrix(t *testing.T) {
	rows, err := Comparison{
		Schemes: []Scheme{SchemeECMP, SchemeHermes},
		Seeds:   Seeds(1, 2),
		Base: Config{
			Topology: smallTopo(), Workload: "web-search",
			Load: 0.5, Flows: 80,
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Scheme != SchemeECMP || rows[1].Scheme != SchemeHermes {
		t.Fatalf("rows malformed: %+v", rows)
	}
	for _, r := range rows {
		if r.Stats.N != 2 || len(r.Results) != 2 {
			t.Fatal("per-seed results missing")
		}
	}
	rep := ReportString(rows)
	if !strings.Contains(rep, "ecmp") || !strings.Contains(rep, "hermes") {
		t.Fatalf("report missing rows:\n%s", rep)
	}
	if !strings.Contains(rep, "1.00x") {
		t.Fatalf("report missing normalization:\n%s", rep)
	}
	if _, err := (Comparison{}).Run(); err == nil {
		t.Fatal("empty comparison accepted")
	}
}

func TestSwitchSchemesOnCabledFabric(t *testing.T) {
	// CONGA/LetFlow/DRILL/HULA must handle multi-cable path spaces (their
	// tables are sized by NPaths, not by spine count).
	for _, sch := range []Scheme{SchemeCONGA, SchemeLetFlow, SchemeDRILL, SchemeHULA} {
		res := mustRun(t, Config{
			Topology: TestbedTopology(), Scheme: sch,
			Workload: "web-search", Load: 0.4, Flows: 100, Seed: 3,
		})
		if res.FCT.Unfinished != 0 {
			t.Fatalf("%s stranded %d flows on the cabled testbed", sch, res.FCT.Unfinished)
		}
	}
}

func TestWorkloadFileThroughFacade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "uniform.cdf")
	if err := os.WriteFile(path, []byte("10000 0\n50000 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, Config{
		Topology: smallTopo(), Scheme: SchemeECMP,
		WorkloadFile: path, Workload: "ignored-when-file-set",
		Load: 0.4, Flows: 80, Seed: 1,
	})
	if res.FCT.Flows != 80 || res.FCT.Unfinished != 0 {
		t.Fatal("custom workload run failed")
	}
	// Every flow is 10-50 KB: no large bucket entries.
	if res.FCT.Large.Count != 0 {
		t.Fatalf("%d large flows from a <=50KB distribution", res.FCT.Large.Count)
	}
	bad := Config{Topology: smallTopo(), Scheme: SchemeECMP,
		WorkloadFile: filepath.Join(t.TempDir(), "missing.cdf"),
		Load:         0.4, Flows: 10}
	if _, err := Run(bad); err == nil {
		t.Fatal("missing workload file accepted")
	}
}
