package hermes

import (
	"github.com/hermes-repro/hermes/internal/perf"
)

// PerfOptions configures the performance observatory for a run
// (Config.Perf). The zero value enables profiling with defaults: wall-time
// attribution sampled 1 in 64 event fires, runtime sampled every 50ms.
type PerfOptions = perf.Options

// PerfReport is the per-run perf block carried in Result.Perf: events fired
// by kind, sim-vs-wall ratio, queue peak, peak heap, GC time share.
type PerfReport = perf.RunReport

// PerfObservatory aggregates perf run reports process-wide — total events
// by kind, throughput, peak heap — and exports them live through the status
// plane (/api/perf and the perf.* Prometheus family). Safe for concurrent
// use; parallel sweeps publish from many goroutines.
type PerfObservatory = perf.Observatory

// PerfSummary is the observatory's aggregate view (the /api/perf payload).
type PerfSummary = perf.Summary

// PerfLedger is the append-only benchmark trajectory stored in
// BENCH_perf.json: one entry per pinned-microbenchmark measurement, with
// machine fingerprint and VCS revision, comparable across PRs with a
// benchstat-style significance test.
type PerfLedger = perf.Ledger

// PerfLedgerEntry is one measurement in the perf ledger.
type PerfLedgerEntry = perf.LedgerEntry

// NewPerfObservatory returns an empty perf observatory.
func NewPerfObservatory() *PerfObservatory {
	return perf.NewObservatory()
}

// SetDefaultPerfObservatory installs obs as the process-wide sink for runs
// whose PerfOptions carry no explicit Observatory (mirrors
// SetDefaultStatus). Pass nil to uninstall.
func SetDefaultPerfObservatory(obs *PerfObservatory) {
	perf.SetDefault(obs)
}

// DefaultPerfObservatory returns the process default observatory, or nil.
func DefaultPerfObservatory() *PerfObservatory {
	return perf.Default()
}

// LoadPerfLedger reads a perf ledger file; a missing file yields an empty
// ledger so the first run bootstraps the trajectory.
func LoadPerfLedger(path string) (*PerfLedger, error) {
	return perf.LoadLedger(path)
}
