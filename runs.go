package hermes

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/hermes-repro/hermes/internal/alert"
	"github.com/hermes-repro/hermes/internal/core"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// DeriveHermesParams computes the Table 4 recommended Hermes settings for a
// topology, exactly as Run does internally (§3.3: thresholds derived from
// the fabric's base RTT and one-hop delay). Use it as the starting point for
// overrides via Config.HermesParams.
func DeriveHermesParams(topo Topology) (core.Params, error) {
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(0), topo.toNet())
	if err != nil {
		return core.Params{}, err
	}
	return core.DefaultParams(nw), nil
}

// SeedStats aggregates one metric across seeds.
type SeedStats struct {
	N        int
	Mean     float64
	StdDev   float64
	Min, Max float64
}

// ParallelOptions tunes multi-seed sweep execution.
type ParallelOptions struct {
	// Workers bounds the number of simulations running concurrently.
	// <=0 uses the process default (SetDefaultWorkers, else GOMAXPROCS).
	Workers int
}

// defaultWorkers is the process-wide worker cap installed by
// SetDefaultWorkers (0 = GOMAXPROCS). hermes-bench plumbs its -workers flag
// here so every sweep in the process honors it.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker-pool size used by
// RunSeeds/RunParallel when the caller passes no explicit option. n <= 0
// restores the GOMAXPROCS default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

func (o ParallelOptions) workers(jobs int) int {
	w := o.Workers
	if w <= 0 {
		w = int(defaultWorkers.Load())
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunSeeds executes the same experiment under each seed and returns the
// per-seed results plus aggregate statistics of the overall mean FCT (in
// milliseconds). Use it to separate scheme effects from arrival-pattern
// noise; the paper averages five runs (§5.1). Runs execute on a parallel
// worker pool — each simulation is single-threaded and fully isolated, so
// results are identical to sequential execution.
func RunSeeds(cfg Config, seeds []int64) ([]*Result, SeedStats, error) {
	return RunSeedsOpts(context.Background(), cfg, seeds, ParallelOptions{})
}

// RunSeedsOpts is RunSeeds with a cancellation context and explicit pool
// options.
func RunSeedsOpts(ctx context.Context, cfg Config, seeds []int64, opts ParallelOptions) ([]*Result, SeedStats, error) {
	if len(seeds) == 0 {
		return nil, SeedStats{}, fmt.Errorf("hermes: RunSeeds needs at least one seed")
	}
	results, err := RunParallelOpts(ctx, cfg, seeds, opts)
	if err != nil && results == nil {
		return nil, SeedStats{}, err
	}
	// On pure cancellation the pool hands back what finished (nil for the
	// rest); the stats then cover completed seeds only and SeedStats.N says
	// how many that was. err is still returned so callers can flag the
	// report as partial.
	var xs []float64
	for _, res := range results {
		if res == nil {
			continue
		}
		xs = append(xs, res.FCT.Overall.MeanMs())
	}
	return results, newSeedStats(xs), err
}

// RunParallel executes one experiment per seed on a worker pool bounded by
// GOMAXPROCS. Each run owns its engine, RNG and telemetry, so the results
// are bit-identical to running the seeds one at a time.
func RunParallel(cfg Config, seeds []int64) ([]*Result, error) {
	return RunParallelOpts(context.Background(), cfg, seeds, ParallelOptions{})
}

// RunParallelOpts executes one experiment per seed on a sharded worker pool.
//
//   - Determinism: results[i] always corresponds to seeds[i], and every run
//     is bit-identical to a sequential Run with the same Config+Seed (worker
//     count and scheduling order cannot leak into results).
//   - Isolation: each worker goroutine runs whole simulations; a run's
//     engine, RNG, metric registry, audit log and sweeper are all owned by
//     that run, so telemetry from concurrent seeds never mixes.
//   - Cancellation: cancelling ctx aborts queued seeds and interrupts
//     in-flight simulations at their next scheduling slice; the first real
//     simulation error cancels the rest of the sweep and returns nil results.
//     A pure cancellation returns the completed results (nil for unfinished
//     slots) together with the cancellation error, so partial sweeps can
//     still be reported.
func RunParallelOpts(ctx context.Context, cfg Config, seeds []int64, opts ParallelOptions) ([]*Result, error) {
	if err := checkPoolable(cfg); err != nil {
		return nil, err
	}
	cfgs := make([]Config, len(seeds))
	labels := make([]string, len(seeds))
	for i, seed := range seeds {
		cfgs[i] = cfg
		cfgs[i].Seed = seed
		labels[i] = fmt.Sprintf("seed %d", seed)
	}
	return runConfigsPool(ctx, cfgs, labels, opts)
}

// checkPoolable rejects configs that share single-consumer writers across
// concurrent runs.
func checkPoolable(cfg Config) error {
	if cfg.TraceWriter != nil || cfg.PerfettoWriter != nil {
		return fmt.Errorf("hermes: RunParallel cannot share one trace writer across runs; use Config.Trace and Result.Trace, or trace runs individually")
	}
	if cfg.TimeSeriesWriter != nil || cfg.TimeSeriesCSV != nil {
		return fmt.Errorf("hermes: RunParallel cannot share one time-series writer across runs; use Config.TimeSeries and Result.TimeSeries, or record runs individually")
	}
	return nil
}

// runConfigsPool executes one fully-specified Config per slot on a bounded
// worker pool with the RunParallelOpts contract: results[i] matches cfgs[i]
// bit-for-bit with a sequential Run, the first real failure (by slot order,
// tagged with labels[i]) cancels the rest, and cancellation of ctx aborts
// queued and in-flight runs.
func runConfigsPool(ctx context.Context, cfgs []Config, labels []string, opts ParallelOptions) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*Result, len(cfgs))
	if len(cfgs) == 0 {
		return results, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Announce the batch on the status plane(s) the runs will publish to —
	// configs may carry distinct trackers, so tally per tracker.
	planned := map[*Status]int{}
	for i := range cfgs {
		if st := statusFor(&cfgs[i]); st != nil {
			planned[st]++
		}
	}
	for st, n := range planned {
		st.Plan(n)
	}

	errs := make([]error, len(cfgs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := opts.workers(len(cfgs)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				c := cfgs[i]
				c.ctx = ctx
				c.statusLabel = labels[i]
				res, err := Run(c)
				if err != nil {
					errs[i] = fmt.Errorf("%s: %w", labels[i], err)
					cancel() // fail fast: stop feeding and interrupt peers
					continue
				}
				results[i] = res
			}
		}()
	}
feed:
	for i := range cfgs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	// Report the first real simulation failure (deterministically, by seed
	// order) in preference to the cancellations it triggered in peers. A
	// pure cancellation — the operator hit Ctrl-C, nothing actually broke —
	// returns the completed results ALONGSIDE the error (nil slots for runs
	// that never finished), so callers can flush a partial report instead
	// of throwing away every finished simulation.
	var firstCancel error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if firstCancel == nil {
				firstCancel = err
			}
		default:
			return nil, err
		}
	}
	if firstCancel == nil {
		// Cancelled between runs: no worker saw it, but queued seeds never ran.
		firstCancel = ctx.Err()
	}
	return results, firstCancel
}

// Seeds returns [base, base+1, ..., base+n-1], a convenience for RunSeeds.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// newSeedStats aggregates one scalar across seeds.
func newSeedStats(xs []float64) SeedStats {
	st := SeedStats{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		st.Min, st.Max = 0, 0
		return st
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
		if x < st.Min {
			st.Min = x
		}
		if x > st.Max {
			st.Max = x
		}
	}
	st.Mean = sum / float64(len(xs))
	if v := sumSq/float64(len(xs)) - st.Mean*st.Mean; v > 0 {
		st.StdDev = math.Sqrt(v)
	}
	return st
}

// ChaosMatrixConfig configures RunChaosMatrix: the cross product of Schemes,
// Scenarios and Seeds, plus one clean (no-failure) baseline per scheme for
// FCT-inflation scoring. Base supplies everything else (topology, workload,
// load, flows); its Scheme, Seed, Scenario and Failure are overwritten per
// cell.
type ChaosMatrixConfig struct {
	Base      Config
	Schemes   []Scheme
	Scenarios []*Scenario // each needs a distinct non-empty Name
	Seeds     []int64
	Options   ParallelOptions

	// Alerts arms the SLO watchdog on every run of the matrix (clean
	// baselines included, so false-positive rates are visible). Per-cell
	// alert counts and the detect cross-check land on each ChaosCell.
	Alerts *AlertsConfig
	// AlertLog, when set alongside Alerts, receives every run's alert log
	// as JSONL in slot order (scheme-major, then scenario, then seed) —
	// written after the pool completes, so the bytes are identical
	// regardless of worker count.
	AlertLog io.Writer `json:"-"`
}

// ChaosCell aggregates one scheme under one scenario across all seeds.
type ChaosCell struct {
	Scheme   Scheme `json:"scheme"`
	Scenario string `json:"scenario"`

	// Runs is the seed count; DetectedRuns/ReroutedRuns count seeds where at
	// least one activation was detected/rerouted around.
	Runs         int `json:"runs"`
	DetectedRuns int `json:"detected_runs"`
	ReroutedRuns int `json:"rerouted_runs"`
	// MeanDetectMs/MeanRerouteMs average the per-run fastest finite
	// detection/reroute latency over the runs that have one (-1 = none did).
	MeanDetectMs  float64 `json:"mean_detect_ms"`
	MeanRerouteMs float64 `json:"mean_reroute_ms"`

	// WorstDipMs is the per-run worst activation dip duration; DipIntegral
	// sums the goodput deficit over all activations of a run (Gbps·ms).
	WorstDipMs  SeedStats `json:"worst_dip_ms"`
	DipIntegral SeedStats `json:"dip_integral_gbps_ms"`

	// P99Ms is the overall flow-completion p99 across seeds, and
	// P99InflationPct its mean inflation over the scheme's clean baseline.
	P99Ms           SeedStats `json:"p99_ms"`
	P99InflationPct float64   `json:"p99_inflation_pct"`
	GoodputGbps     SeedStats `json:"goodput_gbps"`
	// Unfinished totals flows stranded at run end across seeds.
	Unfinished int `json:"unfinished"`

	// Alert columns, populated only when ChaosMatrixConfig.Alerts armed the
	// watchdog: episodes fired/resolved across seeds, and the consistency
	// cross-check — of AlertDetectTotal detected failure activations,
	// AlertDetectAgree had a gray-path-dwell alert fire within one sample
	// interval of the recovery plane's detection instant.
	AlertsFired      int `json:"alerts_fired,omitempty"`
	AlertsResolved   int `json:"alerts_resolved,omitempty"`
	AlertDetectAgree int `json:"alert_detect_agree,omitempty"`
	AlertDetectTotal int `json:"alert_detect_total,omitempty"`
}

// SchemeScore is one row of the matrix ranking: Score is the mean over
// scenarios of three equally-weighted [0,1]-normalized penalties — detection
// latency (undetected = 1), dip integral, and p99 inflation. Lower is better.
type SchemeScore struct {
	Scheme              Scheme  `json:"scheme"`
	Score               float64 `json:"score"`
	MeanDetectMs        float64 `json:"mean_detect_ms"`
	MeanWorstDipMs      float64 `json:"mean_worst_dip_ms"`
	MeanP99InflationPct float64 `json:"mean_p99_inflation_pct"`
}

// ChaosMatrix is the scheme x failure resilience report.
type ChaosMatrix struct {
	// Manifest records build/VCS provenance when the producer attached one
	// (hermes-chaos does; RunChaosMatrix leaves it nil so the matrix stays a
	// pure function of its config across machines and commits).
	Manifest *Manifest `json:"manifest,omitempty"`

	Schemes   []Scheme `json:"schemes"`
	Scenarios []string `json:"scenarios"`
	Seeds     []int64  `json:"seeds"`

	// AlertsArmed records whether the SLO watchdog ran on every cell (the
	// alert columns of Cells are meaningful only when true).
	AlertsArmed bool `json:"alerts_armed,omitempty"`

	// Partial marks a matrix aggregated from an interrupted sweep: cells
	// cover only the runs that finished before cancellation (Runs below the
	// seed count, possibly zero), so cross-cell comparisons are suspect.
	Partial bool `json:"partial,omitempty"`

	// BaselineP99Ms is each scheme's clean-run p99 (mean over seeds), the
	// denominator of every inflation figure.
	BaselineP99Ms map[Scheme]float64 `json:"baseline_p99_ms"`
	// Cells is scenario-major: all schemes of Scenarios[0] first.
	Cells   []ChaosCell   `json:"cells"`
	Ranking []SchemeScore `json:"ranking"`
}

// Cell returns the aggregate for (scheme, scenario), or nil.
func (m *ChaosMatrix) Cell(scheme Scheme, scenario string) *ChaosCell {
	for i := range m.Cells {
		if m.Cells[i].Scheme == scheme && m.Cells[i].Scenario == scenario {
			return &m.Cells[i]
		}
	}
	return nil
}

// RunChaosMatrix sweeps schemes x scenarios x seeds — plus one clean baseline
// per scheme — on a single worker pool, and aggregates each cell's recovery
// metrics (detection and reroute latency, goodput-dip depth and cost) and
// FCT inflation over the clean baseline. Deterministic: same config, same
// matrix, regardless of worker count. When the context is cancelled mid-sweep
// it returns the matrix aggregated from the completed runs, marked Partial,
// together with the cancellation error.
func RunChaosMatrix(ctx context.Context, mc ChaosMatrixConfig) (*ChaosMatrix, error) {
	if len(mc.Schemes) == 0 || len(mc.Scenarios) == 0 || len(mc.Seeds) == 0 {
		return nil, fmt.Errorf("hermes: chaos matrix needs schemes, scenarios and seeds (have %d/%d/%d)",
			len(mc.Schemes), len(mc.Scenarios), len(mc.Seeds))
	}
	if err := checkPoolable(mc.Base); err != nil {
		return nil, err
	}
	names := make(map[string]bool, len(mc.Scenarios))
	for _, sc := range mc.Scenarios {
		if sc == nil || sc.Name == "" {
			return nil, fmt.Errorf("hermes: chaos matrix scenarios need non-empty names")
		}
		if names[sc.Name] {
			return nil, fmt.Errorf("hermes: duplicate scenario name %q in chaos matrix", sc.Name)
		}
		names[sc.Name] = true
	}

	// Flatten: per scheme, one clean baseline run then every scenario, per
	// seed. Slot order is the deterministic identity of each run.
	type slot struct {
		scheme   int
		scenario int // -1 = clean baseline
		seed     int
	}
	var slots []slot
	var cfgs []Config
	var labels []string
	for si, scheme := range mc.Schemes {
		for ci := -1; ci < len(mc.Scenarios); ci++ {
			for ki, seed := range mc.Seeds {
				c := mc.Base
				c.Scheme = scheme
				c.Seed = seed
				c.Failure = FailureSpec{}
				c.Alerts = mc.Alerts
				if ci < 0 {
					c.Scenario = nil
					c.TimeSeries = false
					labels = append(labels, fmt.Sprintf("%s/clean/seed %d", scheme, seed))
				} else {
					c.Scenario = mc.Scenarios[ci]
					labels = append(labels, fmt.Sprintf("%s/%s/seed %d", scheme, mc.Scenarios[ci].Name, seed))
				}
				slots = append(slots, slot{scheme: si, scenario: ci, seed: ki})
				cfgs = append(cfgs, c)
			}
		}
	}
	statusFor(&mc.Base).Note(fmt.Sprintf(
		"chaos matrix: %d schemes x %d scenarios x %d seeds (+clean baselines)",
		len(mc.Schemes), len(mc.Scenarios), len(mc.Seeds)))
	results, poolErr := runConfigsPool(ctx, cfgs, labels, mc.Options)
	if poolErr != nil && results == nil {
		return nil, poolErr
	}

	// Flush the per-run alert logs in slot order after the pool drains:
	// the log bytes are then a pure function of the matrix config,
	// independent of worker count and scheduling.
	if mc.Alerts != nil && mc.AlertLog != nil {
		for i, res := range results {
			if res == nil || res.Alerts == nil {
				continue
			}
			if err := alert.WriteRunLog(mc.AlertLog, labels[i], res.Alerts); err != nil {
				return nil, fmt.Errorf("hermes: writing chaos alert log: %w", err)
			}
		}
	}

	m := &ChaosMatrix{
		Schemes: mc.Schemes, Seeds: mc.Seeds,
		AlertsArmed:   mc.Alerts != nil,
		Partial:       poolErr != nil,
		BaselineP99Ms: make(map[Scheme]float64, len(mc.Schemes)),
	}
	for _, sc := range mc.Scenarios {
		m.Scenarios = append(m.Scenarios, sc.Name)
	}

	// Group results back into cells. Interrupted sweeps leave nil slots;
	// the matrix aggregates whatever finished.
	byCell := make(map[[2]int][]*Result)
	for i, res := range results {
		if res == nil {
			continue
		}
		byCell[[2]int{slots[i].scheme, slots[i].scenario}] = append(
			byCell[[2]int{slots[i].scheme, slots[i].scenario}], res)
	}
	for si, scheme := range mc.Schemes {
		var p99 []float64
		for _, res := range byCell[[2]int{si, -1}] {
			p99 = append(p99, res.FCT.Overall.P99Ms())
		}
		m.BaselineP99Ms[scheme] = newSeedStats(p99).Mean
	}
	for ci := range mc.Scenarios {
		for si, scheme := range mc.Schemes {
			cell := ChaosCell{Scheme: scheme, Scenario: mc.Scenarios[ci].Name}
			var detect, reroute, worstDip, dipInt, p99, goodput []float64
			for _, res := range byCell[[2]int{si, ci}] {
				cell.Runs++
				cell.Unfinished += res.FCT.Unfinished
				p99 = append(p99, res.FCT.Overall.P99Ms())
				goodput = append(goodput, res.GoodputGbps)
				runDetect, runReroute := math.Inf(1), math.Inf(1)
				runWorst, runInt := 0.0, 0.0
				if res.Recovery != nil {
					for _, e := range res.Recovery.Events {
						if e.TimeToDetectNs >= 0 && float64(e.TimeToDetectNs) < runDetect {
							runDetect = float64(e.TimeToDetectNs)
						}
						if e.TimeToRerouteNs >= 0 && float64(e.TimeToRerouteNs) < runReroute {
							runReroute = float64(e.TimeToRerouteNs)
						}
						if d := float64(e.DipDurationNs); d > runWorst {
							runWorst = d
						}
						runInt += e.DipIntegralGbpsMs
					}
				}
				if res.Alerts != nil {
					cell.AlertsFired += res.Alerts.Fired
					cell.AlertsResolved += res.Alerts.Resolved
					if res.Recovery != nil {
						cross := crossCheckAlertDetect(res)
						cell.AlertDetectAgree += cross[0]
						cell.AlertDetectTotal += cross[1]
					}
				}
				if !math.IsInf(runDetect, 1) {
					cell.DetectedRuns++
					detect = append(detect, runDetect/1e6)
				}
				if !math.IsInf(runReroute, 1) {
					cell.ReroutedRuns++
					reroute = append(reroute, runReroute/1e6)
				}
				worstDip = append(worstDip, runWorst/1e6)
				dipInt = append(dipInt, runInt)
			}
			cell.MeanDetectMs, cell.MeanRerouteMs = -1, -1
			if len(detect) > 0 {
				cell.MeanDetectMs = newSeedStats(detect).Mean
			}
			if len(reroute) > 0 {
				cell.MeanRerouteMs = newSeedStats(reroute).Mean
			}
			cell.WorstDipMs = newSeedStats(worstDip)
			cell.DipIntegral = newSeedStats(dipInt)
			cell.P99Ms = newSeedStats(p99)
			cell.GoodputGbps = newSeedStats(goodput)
			if base := m.BaselineP99Ms[scheme]; base > 0 {
				cell.P99InflationPct = (cell.P99Ms.Mean/base - 1) * 100
			}
			m.Cells = append(m.Cells, cell)
		}
	}
	m.rank()
	// A cancelled sweep yields BOTH the partial matrix and the error: the
	// caller decides whether to render it (marked Partial) before exiting.
	return m, poolErr
}

// crossCheckAlertDetect reconciles the two independent detection planes of
// one run. The recovery analysis detects at the exact instant of the first
// in-scope path-state transition into gray/failed; the gray-path-dwell rule
// watches the same census through the generic rule engine, but only on
// sample boundaries. Consistency therefore means: at the first sample
// boundary at/after OnsetNs+TimeToDetectNs, a gray-path-dwell alert is
// firing. When the census was clean before the failure, that alert's fire
// time necessarily matches TimeToDetect within one sample interval; when
// routine sense-making had already grayed paths, the dwell alert was firing
// earlier — the watchdog saw the degradation no later than the recovery
// plane. Returns {agreements, detected activations}.
func crossCheckAlertDetect(res *Result) [2]int {
	iv := res.Alerts.IntervalNs
	if iv <= 0 {
		return [2]int{}
	}
	var agree, total int
	for _, e := range res.Recovery.Events {
		if e.TimeToDetectNs < 0 {
			continue
		}
		total++
		d := e.OnsetNs + e.TimeToDetectNs
		s := ((d + iv - 1) / iv) * iv // first sample boundary at/after detection
		for _, a := range res.Alerts.Alerts {
			if a.Rule != AlertGrayPathDwell || a.FiringNs == 0 {
				continue
			}
			if a.FiringNs <= s && (a.ResolvedNs == 0 || a.ResolvedNs > s) {
				agree++
				break
			}
		}
	}
	return [2]int{agree, total}
}

// rank fills Ranking: per scenario each scheme accrues three equally-weighted
// [0,1] penalties — detection latency (no detection = 1; detected =
// latency relative to the scenario's worst dip duration, i.e. the damage
// blind schemes took), dip integral and p99 inflation each normalized by
// the scenario's worst — then scores average over scenarios.
func (m *ChaosMatrix) rank() {
	type acc struct {
		score, detect, dip, infl float64
		detectN                  int
	}
	accs := make([]acc, len(m.Schemes))
	idx := make(map[Scheme]int, len(m.Schemes))
	for i, s := range m.Schemes {
		idx[s] = i
	}
	for _, scn := range m.Scenarios {
		var maxDip, maxInt, maxInfl float64
		for _, s := range m.Schemes {
			c := m.Cell(s, scn)
			if c.WorstDipMs.Mean > maxDip {
				maxDip = c.WorstDipMs.Mean
			}
			if c.DipIntegral.Mean > maxInt {
				maxInt = c.DipIntegral.Mean
			}
			if p := math.Max(c.P99InflationPct, 0); p > maxInfl {
				maxInfl = p
			}
		}
		for _, s := range m.Schemes {
			c, a := m.Cell(s, scn), &accs[idx[s]]
			detectPen := 1.0
			if c.MeanDetectMs >= 0 {
				detectPen = 0
				if maxDip > 0 {
					detectPen = math.Min(1, c.MeanDetectMs/maxDip)
				}
			}
			intPen, inflPen := 0.0, 0.0
			if maxInt > 0 {
				intPen = c.DipIntegral.Mean / maxInt
			}
			if maxInfl > 0 {
				inflPen = math.Max(c.P99InflationPct, 0) / maxInfl
			}
			a.score += (detectPen + intPen + inflPen) / 3
			if c.MeanDetectMs >= 0 {
				a.detect += c.MeanDetectMs
				a.detectN++
			}
			a.dip += c.WorstDipMs.Mean
			a.infl += c.P99InflationPct
		}
	}
	n := float64(len(m.Scenarios))
	for i, s := range m.Schemes {
		detect := -1.0
		if accs[i].detectN > 0 {
			detect = accs[i].detect / float64(accs[i].detectN)
		}
		m.Ranking = append(m.Ranking, SchemeScore{
			Scheme: s, Score: accs[i].score / n,
			MeanDetectMs:        detect,
			MeanWorstDipMs:      accs[i].dip / n,
			MeanP99InflationPct: accs[i].infl / n,
		})
	}
	sort.SliceStable(m.Ranking, func(i, j int) bool {
		return m.Ranking[i].Score < m.Ranking[j].Score
	})
}
