package hermes

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/hermes-repro/hermes/internal/core"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// DeriveHermesParams computes the Table 4 recommended Hermes settings for a
// topology, exactly as Run does internally (§3.3: thresholds derived from
// the fabric's base RTT and one-hop delay). Use it as the starting point for
// overrides via Config.HermesParams.
func DeriveHermesParams(topo Topology) (core.Params, error) {
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(0), topo.toNet())
	if err != nil {
		return core.Params{}, err
	}
	return core.DefaultParams(nw), nil
}

// SeedStats aggregates one metric across seeds.
type SeedStats struct {
	N        int
	Mean     float64
	StdDev   float64
	Min, Max float64
}

// ParallelOptions tunes multi-seed sweep execution.
type ParallelOptions struct {
	// Workers bounds the number of simulations running concurrently.
	// <=0 uses the process default (SetDefaultWorkers, else GOMAXPROCS).
	Workers int
}

// defaultWorkers is the process-wide worker cap installed by
// SetDefaultWorkers (0 = GOMAXPROCS). hermes-bench plumbs its -workers flag
// here so every sweep in the process honors it.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker-pool size used by
// RunSeeds/RunParallel when the caller passes no explicit option. n <= 0
// restores the GOMAXPROCS default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

func (o ParallelOptions) workers(jobs int) int {
	w := o.Workers
	if w <= 0 {
		w = int(defaultWorkers.Load())
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunSeeds executes the same experiment under each seed and returns the
// per-seed results plus aggregate statistics of the overall mean FCT (in
// milliseconds). Use it to separate scheme effects from arrival-pattern
// noise; the paper averages five runs (§5.1). Runs execute on a parallel
// worker pool — each simulation is single-threaded and fully isolated, so
// results are identical to sequential execution.
func RunSeeds(cfg Config, seeds []int64) ([]*Result, SeedStats, error) {
	return RunSeedsOpts(context.Background(), cfg, seeds, ParallelOptions{})
}

// RunSeedsOpts is RunSeeds with a cancellation context and explicit pool
// options.
func RunSeedsOpts(ctx context.Context, cfg Config, seeds []int64, opts ParallelOptions) ([]*Result, SeedStats, error) {
	if len(seeds) == 0 {
		return nil, SeedStats{}, fmt.Errorf("hermes: RunSeeds needs at least one seed")
	}
	results, err := RunParallelOpts(ctx, cfg, seeds, opts)
	if err != nil {
		return nil, SeedStats{}, err
	}
	var sum, sumSq float64
	st := SeedStats{N: len(seeds), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, res := range results {
		m := res.FCT.Overall.MeanMs()
		sum += m
		sumSq += m * m
		if m < st.Min {
			st.Min = m
		}
		if m > st.Max {
			st.Max = m
		}
	}
	st.Mean = sum / float64(len(seeds))
	variance := sumSq/float64(len(seeds)) - st.Mean*st.Mean
	if variance > 0 {
		st.StdDev = math.Sqrt(variance)
	}
	return results, st, nil
}

// RunParallel executes one experiment per seed on a worker pool bounded by
// GOMAXPROCS. Each run owns its engine, RNG and telemetry, so the results
// are bit-identical to running the seeds one at a time.
func RunParallel(cfg Config, seeds []int64) ([]*Result, error) {
	return RunParallelOpts(context.Background(), cfg, seeds, ParallelOptions{})
}

// RunParallelOpts executes one experiment per seed on a sharded worker pool.
//
//   - Determinism: results[i] always corresponds to seeds[i], and every run
//     is bit-identical to a sequential Run with the same Config+Seed (worker
//     count and scheduling order cannot leak into results).
//   - Isolation: each worker goroutine runs whole simulations; a run's
//     engine, RNG, metric registry, audit log and sweeper are all owned by
//     that run, so telemetry from concurrent seeds never mixes.
//   - Cancellation: cancelling ctx aborts queued seeds and interrupts
//     in-flight simulations at their next scheduling slice; the first real
//     simulation error cancels the rest of the sweep.
func RunParallelOpts(ctx context.Context, cfg Config, seeds []int64, opts ParallelOptions) ([]*Result, error) {
	if cfg.TraceWriter != nil || cfg.PerfettoWriter != nil {
		return nil, fmt.Errorf("hermes: RunParallel cannot share one trace writer across runs; use Config.Trace and Result.Trace, or trace runs individually")
	}
	if cfg.TimeSeriesWriter != nil || cfg.TimeSeriesCSV != nil {
		return nil, fmt.Errorf("hermes: RunParallel cannot share one time-series writer across runs; use Config.TimeSeries and Result.TimeSeries, or record runs individually")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*Result, len(seeds))
	if len(seeds) == 0 {
		return results, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, len(seeds))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := opts.workers(len(seeds)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				c := cfg
				c.Seed = seeds[i]
				c.ctx = ctx
				res, err := Run(c)
				if err != nil {
					errs[i] = fmt.Errorf("seed %d: %w", seeds[i], err)
					cancel() // fail fast: stop feeding and interrupt peers
					continue
				}
				results[i] = res
			}
		}()
	}
feed:
	for i := range seeds {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	// Report the first real simulation failure (deterministically, by seed
	// order) in preference to the cancellations it triggered in peers.
	var firstCancel error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if firstCancel == nil {
				firstCancel = err
			}
		default:
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstCancel != nil {
		return nil, firstCancel
	}
	return results, nil
}

// Seeds returns [base, base+1, ..., base+n-1], a convenience for RunSeeds.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}
