package hermes

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/hermes-repro/hermes/internal/core"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// DeriveHermesParams computes the Table 4 recommended Hermes settings for a
// topology, exactly as Run does internally (§3.3: thresholds derived from
// the fabric's base RTT and one-hop delay). Use it as the starting point for
// overrides via Config.HermesParams.
func DeriveHermesParams(topo Topology) (core.Params, error) {
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(0), topo.toNet())
	if err != nil {
		return core.Params{}, err
	}
	return core.DefaultParams(nw), nil
}

// SeedStats aggregates one metric across seeds.
type SeedStats struct {
	N        int
	Mean     float64
	StdDev   float64
	Min, Max float64
}

// RunSeeds executes the same experiment under each seed and returns the
// per-seed results plus aggregate statistics of the overall mean FCT (in
// milliseconds). Use it to separate scheme effects from arrival-pattern
// noise; the paper averages five runs (§5.1). Runs execute in parallel —
// each simulation is single-threaded and fully isolated, so results are
// identical to sequential execution.
func RunSeeds(cfg Config, seeds []int64) ([]*Result, SeedStats, error) {
	if len(seeds) == 0 {
		return nil, SeedStats{}, fmt.Errorf("hermes: RunSeeds needs at least one seed")
	}
	results, err := RunParallel(cfg, seeds)
	if err != nil {
		return nil, SeedStats{}, err
	}
	var sum, sumSq float64
	st := SeedStats{N: len(seeds), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, res := range results {
		m := res.FCT.Overall.MeanMs()
		sum += m
		sumSq += m * m
		if m < st.Min {
			st.Min = m
		}
		if m > st.Max {
			st.Max = m
		}
	}
	st.Mean = sum / float64(len(seeds))
	variance := sumSq/float64(len(seeds)) - st.Mean*st.Mean
	if variance > 0 {
		st.StdDev = math.Sqrt(variance)
	}
	return results, st, nil
}

// RunParallel executes one experiment per seed concurrently, bounded by
// GOMAXPROCS workers. Each run owns its engine and RNG, so the results are
// bit-identical to running them one at a time.
func RunParallel(cfg Config, seeds []int64) ([]*Result, error) {
	if cfg.TraceWriter != nil {
		return nil, fmt.Errorf("hermes: RunParallel cannot share one TraceWriter across runs; trace runs individually")
	}
	results := make([]*Result, len(seeds))
	errs := make([]error, len(seeds))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, s := range seeds {
		i, s := i, s
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			c := cfg
			c.Seed = s
			res, err := Run(c)
			if err != nil {
				errs[i] = fmt.Errorf("seed %d: %w", s, err)
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Seeds returns [base, base+1, ..., base+n-1], a convenience for RunSeeds.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}
