package hermes

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hermes-repro/hermes/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenConfig is a small blackhole run: big enough to exercise every report
// section (counters, series, histograms, audit), small enough to keep the
// golden file reviewable.
func goldenConfig() Config {
	return Config{
		Topology: Topology{
			Leaves: 2, Spines: 2, HostsPerLeaf: 2,
			HostRateBps: 1e9, FabricRateBps: 1e9,
			HostDelayNs: 2000, FabricDelayNs: 2000,
		},
		Scheme:              SchemeHermes,
		Workload:            "web-search",
		Load:                0.4,
		Flows:               30,
		Seed:                42,
		Failure:             FailureSpec{Kind: FailureBlackhole, Spine: 0},
		DrainTimeoutNs:      200 * 1e6,
		Telemetry:           true,
		TelemetryIntervalNs: 20 * 1e6,
	}
}

func buildGoldenReport(t *testing.T) *Report {
	t.Helper()
	cfg := goldenConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BuildReport(cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestReportGolden pins the report schema and content byte-for-byte. After an
// intentional format change, regenerate with `go test -run Golden -update`
// and review the diff.
func TestReportGolden(t *testing.T) {
	rep := buildGoldenReport(t)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("report differs from %s (len %d vs %d); regenerate with -update and review",
			path, buf.Len(), len(want))
	}
	if rep.Schema != telemetry.ReportSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, telemetry.ReportSchema)
	}
}

// TestReportDeterminism is the regression gate for simulation-time-only
// telemetry: two runs with identical config and seed must serialize to
// byte-identical JSON and CSV. Any wall-clock or map-order leak breaks this.
func TestReportDeterminism(t *testing.T) {
	var jsons, csvs [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		rep := buildGoldenReport(t)
		if err := rep.WriteJSON(&jsons[i]); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteCSV(&csvs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(jsons[0].Bytes(), jsons[1].Bytes()) {
		t.Fatal("same seed produced different JSON reports")
	}
	if !bytes.Equal(csvs[0].Bytes(), csvs[1].Bytes()) {
		t.Fatal("same seed produced different CSV reports")
	}
}

// TestBlackholeAuditLog checks the acceptance scenario: a blackhole run must
// leave a non-empty decision audit trail with failure verdicts, and the
// report must carry FCT percentiles and per-port counter totals.
func TestBlackholeAuditLog(t *testing.T) {
	rep := buildGoldenReport(t)

	if rep.Audit.Entries == 0 {
		t.Fatal("blackhole run produced an empty audit log")
	}
	if rep.Audit.ByKind[string(telemetry.AuditPlace)] == 0 {
		t.Fatal("no placement entries recorded")
	}
	verdicts := 0
	for _, reason := range []string{
		telemetry.ReasonBlackhole, telemetry.ReasonProbeLoss, telemetry.ReasonSilentDrop,
	} {
		verdicts += rep.Audit.ByReason[reason]
	}
	if verdicts == 0 {
		t.Fatalf("no failure verdicts in audit log: %+v", rep.Audit.ByReason)
	}

	if rep.FCT.Flows == 0 || rep.FCT.Overall.Count == 0 {
		t.Fatal("report missing FCT percentiles")
	}
	perPort := 0
	for k := range rep.Counters {
		if strings.HasPrefix(k, "net.port.") {
			perPort++
		}
	}
	if perPort == 0 {
		t.Fatal("report missing per-port counter totals")
	}
	if len(rep.SeriesTimesNs) == 0 || len(rep.Series) == 0 {
		t.Fatal("report missing swept time series")
	}

	// The embedded config must round-trip.
	var cfg Config
	if err := json.Unmarshal(rep.Config, &cfg); err != nil {
		t.Fatalf("embedded config does not parse: %v", err)
	}
	if cfg.Seed != 42 || cfg.Scheme != SchemeHermes {
		t.Fatalf("embedded config mangled: %+v", cfg)
	}
}

// TestTelemetryOffLeavesResultBare ensures the default path is unchanged:
// no registry, no audit log, nil Telemetry on the result.
func TestTelemetryOffLeavesResultBare(t *testing.T) {
	cfg := goldenConfig()
	cfg.Telemetry = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil {
		t.Fatal("telemetry bundle allocated despite Telemetry=false")
	}
	// BuildReport still works, with run-level counters only.
	rep, err := BuildReport(cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Audit.Entries != 0 || len(rep.Series) != 0 {
		t.Fatal("disabled telemetry leaked data into the report")
	}
	if _, ok := rep.Counters["run.goodput_gbps"]; !ok {
		t.Fatal("run-level counters missing")
	}
}
