package hermes

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Comparison is a multi-scheme, multi-seed experiment matrix: the
// programmatic equivalent of one hermes-bench table, exposed through the
// public API so downstream users can build their own evaluations.
type Comparison struct {
	Schemes []Scheme
	Seeds   []int64
	// Base is the shared configuration; Scheme and Seed are overwritten.
	Base Config
	// Workers bounds the per-scheme worker pool (0 = process default).
	Workers int
	// Context, when non-nil, cancels the whole matrix.
	Context context.Context
}

// ComparisonRow is the aggregate outcome for one scheme.
type ComparisonRow struct {
	Scheme Scheme
	Stats  SeedStats
	// Results holds the per-seed raw results.
	Results []*Result
}

// Run executes the matrix (schemes sequentially, seeds in parallel) and
// returns rows in the order of c.Schemes.
func (c Comparison) Run() ([]ComparisonRow, error) {
	if len(c.Schemes) == 0 {
		return nil, fmt.Errorf("hermes: comparison needs at least one scheme")
	}
	seeds := c.Seeds
	if len(seeds) == 0 {
		seeds = Seeds(1, 1)
	}
	ctx := c.Context
	if ctx == nil {
		ctx = context.Background()
	}
	rows := make([]ComparisonRow, 0, len(c.Schemes))
	for _, sch := range c.Schemes {
		cfg := c.Base
		cfg.Scheme = sch
		results, stats, err := RunSeedsOpts(ctx, cfg, seeds, ParallelOptions{Workers: c.Workers})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sch, err)
		}
		rows = append(rows, ComparisonRow{Scheme: sch, Stats: stats, Results: results})
	}
	return rows, nil
}

// WriteReport renders rows as a ranked text table with the winner first and
// each scheme's mean normalized to it.
func WriteReport(w io.Writer, rows []ComparisonRow) error {
	if len(rows) == 0 {
		return fmt.Errorf("hermes: empty comparison")
	}
	ranked := make([]ComparisonRow, len(rows))
	copy(ranked, rows)
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Stats.Mean < ranked[j].Stats.Mean })
	best := ranked[0].Stats.Mean
	if _, err := fmt.Fprintf(w, "%-14s %12s %10s %10s %8s\n",
		"scheme", "avg FCT(ms)", "stddev", "vs best", "seeds"); err != nil {
		return err
	}
	for _, r := range ranked {
		rel := "1.00x"
		if best > 0 {
			rel = fmt.Sprintf("%.2fx", r.Stats.Mean/best)
		}
		if _, err := fmt.Fprintf(w, "%-14s %12.3f %10.3f %10s %8d\n",
			r.Scheme, r.Stats.Mean, r.Stats.StdDev, rel, r.Stats.N); err != nil {
			return err
		}
	}
	return nil
}

// ReportString renders WriteReport into a string.
func ReportString(rows []ComparisonRow) string {
	var sb strings.Builder
	if err := WriteReport(&sb, rows); err != nil {
		return err.Error()
	}
	return sb.String()
}
